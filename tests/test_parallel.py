"""The parallel sweep runner."""

import pytest

from repro.bench.parallel import (
    explore_many,
    explore_one,
    successful_results,
    unwrap_results,
)
from repro.corpus import TABLE1_PLANS
from repro.corpus.synth import AppPlan
from repro.corpus.table1_apps import TABLE1_EXPECTED, plan_for
from repro.errors import PackedApkError


def test_explore_one_matches_serial():
    plan = plan_for("net.aviascanner.aviascanner")
    outcome = explore_one(plan)
    assert outcome.ok
    result = outcome.unwrap()
    expected = TABLE1_EXPECTED[plan.package]
    assert len(result.visited_activities) == expected[0]
    assert len(result.visited_fragments) == expected[2]


def test_explore_many_concurrent_results_match_paper():
    plans = [plan_for(p) for p in (
        "au.com.digitalstampede.formula",
        "org.rbc.odb",
        "com.happy2.bbmanga",
        "net.aviascanner.aviascanner",
    )]
    results = unwrap_results(explore_many(plans, max_workers=4))
    assert set(results) == {p.package for p in plans}
    for package, result in results.items():
        expected = TABLE1_EXPECTED[package]
        assert len(result.visited_activities) == expected[0], package
        assert len(result.visited_fragments) == expected[2], package


def test_devices_are_isolated():
    plans = [plan_for("org.rbc.odb"), plan_for("com.happy2.bbmanga")]
    results = unwrap_results(explore_many(plans, max_workers=2))
    # Each result only contains invocations from its own package.
    for package, result in results.items():
        assert all(i.component.package == package
                   for i in result.api_invocations)


# ---------------------------------------------------------------------------
# Failure isolation
# ---------------------------------------------------------------------------

def test_packed_app_does_not_abort_the_sweep():
    """One packed app among healthy ones: the sweep completes, yielding
    the healthy results and one recorded failure."""
    plans = [
        plan_for("org.rbc.odb"),
        AppPlan(package="com.packer.victim", visited_activities=2,
                packed=True),
        plan_for("com.happy2.bbmanga"),
    ]
    outcomes = explore_many(plans, max_workers=3)
    assert set(outcomes) == {p.package for p in plans}

    failed = outcomes["com.packer.victim"]
    assert not failed.ok
    assert isinstance(failed.error, PackedApkError)
    assert failed.result is None
    with pytest.raises(PackedApkError):
        failed.unwrap()

    healthy = successful_results(outcomes)
    assert set(healthy) == {"org.rbc.odb", "com.happy2.bbmanga"}
    for package, result in healthy.items():
        expected = TABLE1_EXPECTED[package]
        assert len(result.visited_activities) == expected[0], package

    # The strict accessor surfaces the captured failure.
    with pytest.raises(PackedApkError):
        unwrap_results(outcomes)


def test_explore_one_captures_build_failures(monkeypatch):
    """APK build failures inside the worker are captured, not raised."""
    import repro.bench.parallel as parallel
    from repro.errors import ApkError

    def broken_build(spec):
        raise ApkError("corrupt resource table")

    monkeypatch.setattr(parallel, "build_apk", broken_build)
    outcome = explore_one(plan_for("org.rbc.odb"))
    assert not outcome.ok
    assert outcome.result is None
    assert isinstance(outcome.error, ApkError)


def test_sweep_outcome_duration_recorded():
    outcome = explore_one(plan_for("org.rbc.odb"))
    assert outcome.ok
    assert outcome.duration > 0


def test_explore_many_empty_plan_list():
    assert explore_many([]) == {}


def test_default_worker_count():
    from repro.bench.parallel import _default_workers

    assert _default_workers(1) == 1
    assert _default_workers(0) == 1
    import os

    cap = os.cpu_count() or 4
    assert _default_workers(10_000) == min(10_000, cap)
