"""Foundation types and the exception hierarchy."""

import pytest

from repro import errors
from repro.types import (
    ApiInvocation,
    ComponentName,
    InvocationSource,
    ResourceId,
    WidgetKind,
)


# -- ComponentName -----------------------------------------------------------

def test_component_name_normalises_shorthand():
    name = ComponentName("com.app", ".MainActivity")
    assert name.cls == "com.app.MainActivity"
    assert name.simple_name == "MainActivity"
    assert name.flat == "com.app/com.app.MainActivity"


def test_component_name_parse_round_trip():
    name = ComponentName.parse("com.app/.Main")
    assert ComponentName.parse(name.flat) == name


def test_component_name_rejects_empty():
    with pytest.raises(ValueError):
        ComponentName("", "X")
    with pytest.raises(ValueError):
        ComponentName.parse("no-slash-here")


def test_component_name_ordering_and_hash():
    a = ComponentName("com.app", "A")
    b = ComponentName("com.app", "B")
    assert a < b
    assert len({a, ComponentName("com.app", "A")}) == 1


# -- ResourceId ---------------------------------------------------------------

def test_resource_id_range_enforced():
    with pytest.raises(ValueError):
        ResourceId(0x01010001, "android_attr")
    rid = ResourceId(0x7F010001, "btn")
    assert rid.hex == "0x7f010001"
    assert "btn" in str(rid)


# -- WidgetKind -----------------------------------------------------------------

def test_widget_kind_clickability():
    assert WidgetKind.BUTTON.clickable
    assert WidgetKind.DRAWER_ITEM.clickable
    assert not WidgetKind.TEXT_VIEW.clickable
    assert not WidgetKind.IMAGE_VIEW.clickable


def test_widget_kind_text_acceptance():
    assert WidgetKind.EDIT_TEXT.accepts_text
    assert not WidgetKind.BUTTON.accepts_text


# -- ApiInvocation ----------------------------------------------------------------

def test_api_invocation_category():
    invocation = ApiInvocation(
        "internet/connect", ComponentName("com.a", "X"),
        InvocationSource.FRAGMENT,
    )
    assert invocation.category == "internet"


# -- exception hierarchy --------------------------------------------------------------

@pytest.mark.parametrize(
    "exc",
    [
        errors.ApkError, errors.ManifestError, errors.ResourceError,
        errors.PackedApkError, errors.SmaliError, errors.DecompileError,
        errors.DeviceError, errors.AppNotInstalledError,
        errors.ActivityNotFoundError, errors.SecurityException,
        errors.ReflectionError, errors.WidgetNotFoundError,
        errors.ExplorationError, errors.TestCaseError,
    ],
)
def test_all_errors_are_repro_errors(exc):
    assert issubclass(exc, errors.ReproError)


def test_crash_error_carries_context():
    crash = errors.AppCrashError("com.a", "com.a.Main", "boom")
    assert crash.package == "com.a"
    assert crash.component == "com.a.Main"
    assert "boom" in str(crash)


def test_layer_separation():
    # Catching device errors must not swallow APK errors, and vice versa.
    assert not issubclass(errors.ApkError, errors.DeviceError)
    assert not issubclass(errors.DeviceError, errors.ApkError)
    assert not issubclass(errors.ExplorationError, errors.DeviceError)
