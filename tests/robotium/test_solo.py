"""The Robotium-style Solo driver."""

import pytest

from repro.errors import WidgetNotFoundError
from repro.robotium import Solo


@pytest.fixture
def solo(launched):
    return Solo(launched)


def test_get_current_activity(solo):
    assert solo.get_current_activity() == "com.example.demo.MainActivity"


def test_wait_for_activity_by_simple_name(solo):
    assert solo.wait_for_activity("MainActivity")
    assert not solo.wait_for_activity("SecondActivity")


def test_click_on_view_navigates(solo):
    solo.click_on_view("btn_next")
    assert solo.wait_for_activity("SecondActivity")


def test_click_on_text(solo):
    solo.click_on_text("Next")
    assert solo.wait_for_activity("SecondActivity")
    with pytest.raises(WidgetNotFoundError):
        solo.click_on_text("No Such Label")


def test_search_text(solo):
    assert solo.search_text("Next")
    assert not solo.search_text("Absent")


def test_get_view(solo):
    widget = solo.get_view("btn_next")
    assert widget.text == "Next"
    with pytest.raises(WidgetNotFoundError):
        solo.get_view("ghost")


def test_enter_text_and_go_back(solo):
    solo.enter_text("password", "abc")
    assert solo.get_view("password").entered_text == "abc"
    solo.click_on_view("btn_next")
    solo.go_back()
    assert solo.wait_for_activity("MainActivity")


def test_swipe_right_opens_drawer(solo):
    solo.swipe_right()
    assert [w.widget_id for w in solo.get_current_views()] == ["nav_settings"]


def test_clickable_widgets_ordered_top_to_bottom(solo):
    widgets = solo.clickable_widgets()
    tops = [w.bounds.top for w in widgets]
    assert tops == sorted(tops)
    assert all(w.clickable for w in widgets)
