"""Shared fixtures: a small reference app exercising every mechanism."""

from __future__ import annotations

import pytest

from repro.adb import Adb
from repro.android import Device
from repro.apk import (
    ActivitySpec,
    AppSpec,
    Chain,
    Crash,
    DrawerSpec,
    FragmentSpec,
    InvokeApi,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    StartActivityByAction,
    SubmitForm,
    WidgetSpec,
    build_apk,
)
from repro.apk.appspec import FragmentFactory
from repro.robotium import Solo
from repro.types import WidgetKind


def make_demo_spec(package: str = "com.example.demo") -> AppSpec:
    """A compact app touching most features: fragments (managed, tab and
    drawer switched), an implicit-intent edge, a login gate, a popup, a
    crash button, and sensitive APIs in both component kinds."""
    return AppSpec(
        package=package,
        activities=[
            ActivitySpec(
                name="MainActivity",
                launcher=True,
                initial_fragment="HomeFragment",
                api_calls=["phone/getDeviceId"],
                drawer=DrawerSpec(
                    items=[
                        WidgetSpec(
                            id="nav_settings", kind=WidgetKind.DRAWER_ITEM,
                            text="Settings",
                            on_click=StartActivity("SettingsActivity"),
                        ),
                    ]
                ),
                widgets=[
                    WidgetSpec(id="btn_next", text="Next",
                               on_click=StartActivity("SecondActivity")),
                    WidgetSpec(id="btn_tab", kind=WidgetKind.TAB, text="News",
                               on_click=ShowFragment("NewsFragment",
                                                     "fragment_container")),
                    WidgetSpec(id="btn_about", text="About",
                               on_click=StartActivityByAction(
                                   "com.example.demo.action.ABOUT")),
                    WidgetSpec(id="password", kind=WidgetKind.EDIT_TEXT),
                    WidgetSpec(
                        id="btn_login", text="Sign in",
                        on_click=SubmitForm(
                            required={"password": "hunter2"},
                            on_success=StartActivity("VaultActivity"),
                            on_failure=ShowDialog("Wrong password"),
                        ),
                    ),
                    WidgetSpec(
                        id="btn_menu", text="⋮",
                        on_click=ShowPopupMenu(
                            items=(
                                WidgetSpec(
                                    id="menu_hidden", kind=WidgetKind.MENU_ITEM,
                                    text="Hidden",
                                    on_click=StartActivity("HiddenActivity"),
                                ),
                            )
                        ),
                    ),
                ],
            ),
            ActivitySpec(
                name="SecondActivity",
                widgets=[
                    WidgetSpec(id="btn_crash", text="Crash",
                               on_click=Crash("boom")),
                    WidgetSpec(id="btn_home", text="home",
                               on_click=StartActivity("MainActivity")),
                ],
            ),
            ActivitySpec(name="SettingsActivity",
                         api_calls=["storage/sdcard"]),
            ActivitySpec(name="AboutActivity",
                         intent_actions=["com.example.demo.action.ABOUT"]),
            ActivitySpec(name="VaultActivity", requires_intent_extras=True),
            ActivitySpec(name="HiddenActivity", requires_intent_extras=True),
        ],
        fragments=[
            FragmentSpec(
                name="HomeFragment",
                widgets=[
                    WidgetSpec(
                        id="home_list", kind=WidgetKind.LIST_ITEM, text="item",
                        on_click=Chain(
                            actions=(
                                InvokeApi("location/getAllProviders"),
                                ShowFragment("DetailFragment",
                                             "fragment_container"),
                            )
                        ),
                    ),
                ],
            ),
            FragmentSpec(
                name="NewsFragment",
                api_calls=["internet/connect"],
                widgets=[WidgetSpec(id="news_row", kind=WidgetKind.LIST_ITEM,
                                    text="headline")],
            ),
            FragmentSpec(
                name="DetailFragment",
                factory=FragmentFactory.NEW_INSTANCE,
                widgets=[WidgetSpec(id="detail_row",
                                    kind=WidgetKind.LIST_ITEM, text="detail")],
            ),
            FragmentSpec(
                name="RawFragment",
                managed=False,
                widgets=[WidgetSpec(id="raw_row", kind=WidgetKind.LIST_ITEM,
                                    text="raw")],
            ),
            FragmentSpec(
                name="ArgsFragment",
                factory=FragmentFactory.NEW_INSTANCE,
                requires_args=True,
                widgets=[WidgetSpec(id="args_row", kind=WidgetKind.LIST_ITEM,
                                    text="args")],
            ),
        ],
    )


def make_full_demo_spec(package: str = "com.example.demo") -> AppSpec:
    """The demo spec with the obstacle fragments wired in: RawFragment
    behind a button, ArgsFragment behind a popup item (so both are
    statically visible but dynamically problematic)."""
    spec = make_demo_spec(package)
    second = spec.activity("SecondActivity")
    second.hosted_fragments.extend(["RawFragment", "ArgsFragment"])
    second.container_id = second.container_id or "fragment_container"
    second.widgets.append(
        WidgetSpec(id="btn_raw", text="raw",
                   on_click=ShowFragment("RawFragment",
                                         "fragment_container"))
    )
    second.widgets.append(
        WidgetSpec(
            id="btn_args_menu", text="…",
            on_click=ShowPopupMenu(
                items=(
                    WidgetSpec(id="menu_args", kind=WidgetKind.MENU_ITEM,
                               text="args",
                               on_click=ShowFragment("ArgsFragment",
                                                     "fragment_container")),
                )
            ),
        )
    )
    return spec


@pytest.fixture
def demo_spec() -> AppSpec:
    return make_full_demo_spec()


@pytest.fixture
def demo_apk(demo_spec):
    return build_apk(demo_spec)


@pytest.fixture
def device() -> Device:
    return Device()


@pytest.fixture
def adb(device) -> Adb:
    return Adb(device)


@pytest.fixture
def solo(device) -> Solo:
    return Solo(device)


@pytest.fixture
def launched(device, adb, demo_apk):
    """Device with the demo app installed and launched."""
    adb.install(demo_apk)
    assert adb.am_start_launcher(demo_apk.package)
    return device
