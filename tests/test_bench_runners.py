"""The experiment runners behind the benchmark harness."""

import pytest

from repro.bench.runner import (
    run_ablation,
    run_baseline_comparison,
    run_usage_study,
)


def test_usage_study_small_population():
    study = run_usage_study(count=30, seed=7)
    assert study.total == 30
    assert study.analyzable + study.packed == 30
    assert 0.0 <= study.share <= 1.0
    assert "Fragments" in study.render()


def test_usage_study_deterministic():
    assert run_usage_study(count=25, seed=3) == run_usage_study(count=25,
                                                                seed=3)


def test_baseline_comparison_single_package():
    comparison = run_baseline_comparison(("org.rbc.odb",))
    tools = [row["tool"] for row in comparison.rows]
    assert tools == ["FragDroid", "Activity-MBT", "DFS (A3E)", "Monkey"]
    rendered = comparison.render()
    assert "org.rbc.odb" in rendered
    assert "misattrib" in rendered
    fragdroid = comparison.rows[0]
    assert fragdroid["fragments"] == 5  # matches Table I


def test_ablation_single_package():
    ablation = run_ablation(("net.aviascanner.aviascanner",))
    variants = {row["variant"] for row in ablation.rows}
    assert variants == {"full", "no-reflection", "no-forced-start",
                        "no-click-sweep", "analyst-inputs"}
    rendered = ablation.render()
    assert "net.aviascanner.aviascanner" in rendered


def test_category_summary_rendering():
    from repro import Device, FragDroid
    from repro.apk import build_apk
    from repro.core import build_api_report
    from repro.corpus import build_table1_app

    result = FragDroid(Device()).explore(
        build_apk(build_table1_app("com.inditex.zara"))
    )
    report = build_api_report([result])
    summary = report.render_category_summary()
    assert "media" in summary
    assert "frag-assoc" in summary
    grouped = report.by_category()
    assert all(rel.api.startswith(category)
               for category, rels in grouped.items() for rel in rels)


def test_queue_order_depth_variant():
    from repro import Device, FragDroid, FragDroidConfig
    from repro.apk import build_apk
    from repro.corpus import build_table1_app

    package = "org.rbc.odb"
    bfs = FragDroid(Device(), FragDroidConfig()).explore(
        build_apk(build_table1_app(package))
    )
    dfs = FragDroid(Device(), FragDroidConfig(queue_order="depth")).explore(
        build_apk(build_table1_app(package))
    )
    # Strategy changes the order, not the final coverage (the model is
    # finite and both drain the queue).
    assert bfs.visited_activities == dfs.visited_activities
    assert bfs.visited_fragments == dfs.visited_fragments


def test_queue_rejects_unknown_order():
    from repro.core.queue import UIQueue

    with pytest.raises(ValueError):
        UIQueue(order="sideways")