"""Algorithm 2 (Activity & Fragment dependency) and manager detection."""

import pytest

from repro.smali.apktool import Apktool
from repro.static.dependency import (
    activity_fragment_dependency,
    support_library_activity,
    uses_fragment_manager,
)
from repro.static.effective import declared_activities


@pytest.fixture
def decoded(demo_apk):
    return Apktool().decode(demo_apk)


def test_dependency_via_direct_and_inner_classes(decoded):
    activities = declared_activities(decoded)
    dependency = activity_fragment_dependency(decoded, activities)
    main = dependency["com.example.demo.MainActivity"]
    assert "com.example.demo.HomeFragment" in main
    assert "com.example.demo.NewsFragment" in main  # via listener inner class
    second = dependency["com.example.demo.SecondActivity"]
    assert "com.example.demo.RawFragment" in second
    assert "com.example.demo.ArgsFragment" in second  # via popup listener


def test_activity_without_fragments_has_empty_dependency(decoded):
    dependency = activity_fragment_dependency(
        decoded, declared_activities(decoded)
    )
    assert dependency["com.example.demo.AboutActivity"] == []


def test_uses_fragment_manager(decoded):
    assert uses_fragment_manager(decoded, "com.example.demo.MainActivity")
    # SecondActivity only attaches RawFragment directly and shows a popup:
    # no getFragmentManager call.  (ArgsFragment's transaction is in a
    # popup listener, which IS an inner class of SecondActivity.)
    assert uses_fragment_manager(decoded, "com.example.demo.SecondActivity")
    assert not uses_fragment_manager(decoded, "com.example.demo.AboutActivity")


def test_support_library_detection():
    from repro.apk import ActivitySpec, AppSpec, FragmentSpec, build_apk
    from repro.apk.appspec import SUPPORT_ACTIVITY_BASE, SUPPORT_FRAGMENT_BASE

    spec = AppSpec(
        package="com.sup",
        activities=[ActivitySpec(name="MainActivity", launcher=True,
                                 base_class=SUPPORT_ACTIVITY_BASE,
                                 initial_fragment="HomeFragment")],
        fragments=[FragmentSpec(name="HomeFragment",
                                base_class=SUPPORT_FRAGMENT_BASE)],
    )
    decoded = Apktool().decode(build_apk(spec))
    assert support_library_activity(decoded, "com.sup.MainActivity")
    dependency = activity_fragment_dependency(
        decoded, ["com.sup.MainActivity"]
    )
    assert dependency["com.sup.MainActivity"] == ["com.sup.HomeFragment"]
