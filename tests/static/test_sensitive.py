"""The sensitive-API catalog and static invoke scan."""

import pytest

from repro.static import extract_static_info
from repro.static.sensitive import (
    CATEGORIES,
    SENSITIVE_API_CATALOG,
    api_for_method,
    is_sensitive_api,
    method_for_api,
)


def test_catalog_has_exactly_46_apis():
    assert len(SENSITIVE_API_CATALOG) == 46


def test_catalog_names_unique():
    names = [api.name for api in SENSITIVE_API_CATALOG]
    assert len(names) == len(set(names))


def test_catalog_methods_unique():
    descriptors = [api.method.descriptor() for api in SENSITIVE_API_CATALOG]
    assert len(descriptors) == len(set(descriptors))


def test_thirteen_categories():
    assert len(CATEGORIES) == 13
    assert "internet" in CATEGORIES and "view" in CATEGORIES


def test_lookup_round_trip():
    for api in SENSITIVE_API_CATALOG:
        assert method_for_api(api.name) == api.method
        assert api_for_method(api.method) == api.name


def test_unknown_api_rejected():
    with pytest.raises(KeyError):
        method_for_api("made/up")
    assert not is_sensitive_api("made/up")
    assert is_sensitive_api("phone/getDeviceId")


def test_static_scan_finds_planted_apis(demo_apk):
    info = extract_static_info(demo_apk)
    main_apis = info.static_api_map.get("com.example.demo.MainActivity", [])
    assert "phone/getDeviceId" in main_apis
    home_apis = info.static_api_map.get("com.example.demo.HomeFragment", [])
    assert "location/getAllProviders" in home_apis
    settings = info.static_api_map.get("com.example.demo.SettingsActivity", [])
    assert "storage/sdcard" in settings


def test_api_for_method_matches_descriptor_spelled_refs():
    # A ref reconstructed from its descriptor (the smali scanner's path)
    # must resolve identically to the catalog's own MethodRef object.
    from repro.smali.model import MethodRef

    for api in SENSITIVE_API_CATALOG:
        reparsed = MethodRef.parse(api.method.descriptor())
        assert api_for_method(reparsed) == api.name
