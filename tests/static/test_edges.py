"""Algorithm 1: transition-edge extraction from decompiled units."""

import pytest

from repro.apk import (
    ActivitySpec,
    AppSpec,
    FragmentSpec,
    ShowFragment,
    StartActivity,
    StartActivityByAction,
    WidgetSpec,
    build_apk,
)
from repro.static import extract_static_info
from repro.static.aftm import EdgeKind, activity_node, fragment_node


def aftm_for(spec):
    return extract_static_info(build_apk(spec)).aftm


def test_demo_edges(demo_apk):
    info = extract_static_info(demo_apk)
    aftm = info.aftm
    e1 = {(e.src.simple_name, e.dst.simple_name)
          for e in aftm.edges_of_kind(EdgeKind.E1)}
    assert ("MainActivity", "SecondActivity") in e1
    assert ("MainActivity", "SettingsActivity") in e1   # drawer listener
    assert ("MainActivity", "AboutActivity") in e1      # action resolution
    assert ("MainActivity", "VaultActivity") in e1      # login success branch
    assert ("MainActivity", "HiddenActivity") in e1     # popup item listener
    e2 = {(e.src.simple_name, e.dst.simple_name)
          for e in aftm.edges_of_kind(EdgeKind.E2)}
    assert ("MainActivity", "HomeFragment") in e2
    assert ("MainActivity", "NewsFragment") in e2
    e3 = {(e.src.simple_name, e.dst.simple_name)
          for e in aftm.edges_of_kind(EdgeKind.E3)}
    assert ("HomeFragment", "DetailFragment") in e3


def test_entry_is_launcher(demo_apk):
    aftm = extract_static_info(demo_apk).aftm
    assert aftm.entry == activity_node("com.example.demo.MainActivity")


def test_dynamic_intent_edge_missing():
    spec = AppSpec(
        package="com.dyn",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="a", on_click=StartActivity("StaticActivity")),
                WidgetSpec(id="b", on_click=StartActivity("DynActivity",
                                                          dynamic=True)),
            ]),
            ActivitySpec(name="StaticActivity", widgets=[
                WidgetSpec(id="c", on_click=StartActivity("DynActivity",
                                                          dynamic=True)),
            ]),
            ActivitySpec(name="DynActivity", widgets=[
                WidgetSpec(id="d", on_click=StartActivity("MainActivity")),
            ]),
        ],
    )
    aftm = aftm_for(spec)
    e1 = {(e.src.simple_name, e.dst.simple_name)
          for e in aftm.edges_of_kind(EdgeKind.E1)}
    assert ("MainActivity", "StaticActivity") in e1
    assert ("MainActivity", "DynActivity") not in e1
    assert ("StaticActivity", "DynActivity") not in e1
    # DynActivity keeps its outgoing edge, so it is not isolated.
    assert ("DynActivity", "MainActivity") in e1


def test_unresolvable_action_produces_no_edge():
    spec = AppSpec(
        package="com.act",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="a", on_click=StartActivityByAction(
                    "com.act.KNOWN")),
                WidgetSpec(id="b", on_click=StartActivityByAction(
                    "com.external.UNKNOWN")),
            ]),
            ActivitySpec(name="KnownActivity",
                         intent_actions=["com.act.KNOWN"],
                         widgets=[WidgetSpec(
                             id="c", on_click=StartActivity("MainActivity"))]),
        ],
    )
    aftm = aftm_for(spec)
    e1 = {(e.src.simple_name, e.dst.simple_name)
          for e in aftm.edges_of_kind(EdgeKind.E1)}
    assert ("MainActivity", "KnownActivity") in e1
    assert len(e1) == 2  # and the back edge


def test_isolated_activity_pruned():
    spec = AppSpec(
        package="com.iso",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="a", on_click=StartActivity("LinkedActivity")),
            ]),
            ActivitySpec(name="LinkedActivity"),
            ActivitySpec(name="OrphanActivity"),
        ],
    )
    info = extract_static_info(build_apk(spec))
    assert "com.iso.OrphanActivity" not in info.activities
    assert len(info.activities) == 2


def test_f_to_f_requires_shared_host():
    spec = AppSpec(
        package="com.hosts",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True,
                         initial_fragment="LeftFragment",
                         hosted_fragments=["RightFragment"]),
        ],
        fragments=[
            FragmentSpec(name="LeftFragment", widgets=[
                WidgetSpec(id="go", on_click=ShowFragment(
                    "RightFragment", "fragment_container")),
            ]),
            FragmentSpec(name="RightFragment"),
        ],
    )
    aftm = aftm_for(spec)
    e3 = aftm.edges_of_kind(EdgeKind.E3)
    assert len(e3) == 1
    assert e3[0].host == "com.hosts.MainActivity"


def test_self_edges_never_added(demo_apk):
    aftm = extract_static_info(demo_apk).aftm
    assert all(e.src != e.dst for e in aftm.edges)
