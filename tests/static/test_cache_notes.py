"""The digest-keyed notes side-store and batched lookup counters.

Notes hold small per-APK facts (the usage study's packed/fragments/plain
classification) keyed by package digest, so corpus-wide sweeps answer
from one batched load instead of one full static-info entry per app.
"""

import json

import pytest

from repro.apk import build_apk, digest_many
from repro.static.cache import CACHE_SCHEMA, StaticCache
from tests.conftest import make_demo_spec


@pytest.fixture
def cache(tmp_path):
    return StaticCache(directory=tmp_path / "cache")


def test_digest_many_matches_per_package_digest():
    apks = [build_apk(make_demo_spec(f"com.example.app{i}"))
            for i in range(5)]
    assert digest_many(apks) == [apk.digest() for apk in apks]


def test_notes_round_trip(cache):
    notes = {"d" * 64: "fragments", "e" * 64: "packed"}
    cache.store_notes("usage-study", notes)
    assert cache.load_notes("usage-study") == notes


def test_notes_persist_across_instances(cache, tmp_path):
    cache.store_notes("usage-study", {"a" * 64: "plain"})
    fresh = StaticCache(directory=tmp_path / "cache")
    assert fresh.load_notes("usage-study") == {"a" * 64: "plain"}


def test_notes_merge_instead_of_clobber(cache, tmp_path):
    cache.store_notes("usage-study", {"a" * 64: "plain"})
    other = StaticCache(directory=tmp_path / "cache")
    other.store_notes("usage-study", {"b" * 64: "fragments"})
    merged = StaticCache(directory=tmp_path / "cache")
    assert merged.load_notes("usage-study") == {
        "a" * 64: "plain", "b" * 64: "fragments",
    }


def test_notes_kinds_are_independent(cache):
    cache.store_notes("usage-study", {"a" * 64: "plain"})
    assert cache.load_notes("other-kind") == {}


def test_notes_with_wrong_schema_read_as_empty(cache, tmp_path):
    path = tmp_path / "cache" / "notes-usage-study.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"schema": CACHE_SCHEMA + 1,
                                "notes": {"a" * 64: "plain"}}))
    fresh = StaticCache(directory=tmp_path / "cache")
    assert fresh.load_notes("usage-study") == {}


def test_count_lookups_feeds_hit_rate(cache):
    cache.count_lookups(hits=3, misses=1)
    stats = cache.stats()
    assert stats["hits"] == 3
    assert stats["misses"] == 1
    assert stats["hit_rate"] == pytest.approx(0.75)
    assert stats["lifetime_hit_rate"] == pytest.approx(0.75)


def test_hit_rate_zero_without_lookups(cache):
    assert cache.stats()["hit_rate"] == 0.0


def test_clear_drops_notes(cache):
    cache.store_notes("usage-study", {"a" * 64: "plain"})
    cache.clear()
    assert cache.load_notes("usage-study") == {}
