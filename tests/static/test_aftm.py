"""The AFTM model: edge typing, the seven-to-three merge, traversal."""

import pytest

from repro.errors import ReproError
from repro.static.aftm import (
    AFTM,
    EdgeKind,
    NodeKind,
    activity_node,
    fragment_node,
)

A0 = activity_node("com.t.A0")
A1 = activity_node("com.t.A1")
A2 = activity_node("com.t.A2")
F0 = fragment_node("com.t.F0")
F1 = fragment_node("com.t.F1")
F2 = fragment_node("com.t.F2")


def make_model():
    model = AFTM("com.t", entry=A0)
    model.add_transition(A0, A1)
    model.add_transition(A0, F0, host=A0.name)
    model.add_transition(F0, F1, host=A0.name)
    model.add_transition(A1, F2, host=A1.name)
    return model


def test_edge_kinds_classified():
    model = make_model()
    assert len(model.edges_of_kind(EdgeKind.E1)) == 1
    assert len(model.edges_of_kind(EdgeKind.E2)) == 2
    assert len(model.edges_of_kind(EdgeKind.E3)) == 1


def test_entry_must_be_activity():
    with pytest.raises(ReproError):
        AFTM("com.t", entry=F0)


def test_fragment_to_activity_direct_edge_rejected():
    model = make_model()
    with pytest.raises(ReproError):
        model.add_transition(F0, A1)


def test_inner_edge_requires_host():
    model = AFTM("com.t", entry=A0)
    with pytest.raises(ReproError):
        model.add_transition(F0, F1)


def test_duplicate_edges_not_added():
    model = make_model()
    assert not model.add_transition(A0, A1)
    assert len(model.edges) == 4


def test_dynamic_trigger_upgrades_static_edge():
    model = make_model()
    assert model.add_transition(A0, A1, trigger="btn_go")
    edges = model.edges_of_kind(EdgeKind.E1)
    assert len(edges) == 1
    assert edges[0].trigger == "btn_go"
    # A later static insert does not downgrade it.
    assert not model.add_transition(A0, A1)
    assert model.edges_of_kind(EdgeKind.E1)[0].trigger == "btn_go"


# -- the seven-to-three merge (Section IV-A) --------------------------------------

def test_raw_f_to_inner_a_is_dropped():
    model = make_model()
    assert not model.add_raw_transition(F0, A0, src_host=A0.name)


def test_raw_f_to_outer_a_reroots_at_host():
    model = make_model()
    assert model.add_raw_transition(F0, A2, src_host=A0.name)
    kinds = {(e.src, e.dst) for e in model.edges_of_kind(EdgeKind.E1)}
    assert (A0, A2) in kinds


def test_raw_f_to_outer_f_splits():
    model = AFTM("com.t", entry=A0)
    model.add_transition(A0, F0, host=A0.name)
    changed = model.add_raw_transition(F0, F2, src_host=A0.name,
                                       dst_host=A1.name)
    assert changed
    e1 = {(e.src, e.dst) for e in model.edges_of_kind(EdgeKind.E1)}
    e2 = {(e.src, e.dst) for e in model.edges_of_kind(EdgeKind.E2)}
    assert (A0, A1) in e1
    assert (A1, F2) in e2
    # Re-adding the same raw transition changes nothing.
    assert not model.add_raw_transition(F0, F2, src_host=A0.name,
                                        dst_host=A1.name)


def test_raw_a_to_outer_f_splits():
    model = AFTM("com.t", entry=A0)
    model.add_raw_transition(A0, F2, dst_host=A1.name)
    e1 = {(e.src, e.dst) for e in model.edges_of_kind(EdgeKind.E1)}
    e2 = {(e.src, e.dst) for e in model.edges_of_kind(EdgeKind.E2)}
    assert (A0, A1) in e1
    assert (A1, F2) in e2


def test_raw_same_host_f_to_f_is_e3():
    model = make_model()
    model.add_raw_transition(F1, F0, src_host=A0.name, dst_host=A0.name)
    e3 = {(e.src, e.dst) for e in model.edges_of_kind(EdgeKind.E3)}
    assert (F1, F0) in e3


# -- traversal ----------------------------------------------------------------------

def test_bfs_starts_at_entry():
    order = make_model().bfs_order()
    assert order[0] == A0
    assert set(order) == {A0, A1, F0, F1, F2}


def test_path_to_fragment():
    model = make_model()
    path = model.path_to(F1)
    assert [e.dst for e in path] == [F0, F1]
    assert model.path_to(A0) == []


def test_path_to_unreachable_is_none():
    model = make_model()
    model.add_node(A2)
    assert model.path_to(A2) is None


def test_isolated_prune():
    model = make_model()
    model.add_node(A2)
    assert model.isolated_nodes() == {A2}
    assert model.prune_isolated() == {A2}
    assert A2 not in model


def test_entry_never_pruned():
    model = AFTM("com.t", entry=A0)
    assert model.prune_isolated() == set()
    assert A0 in model


# -- visiting ------------------------------------------------------------------------

def test_mark_visited_first_time_only():
    model = make_model()
    assert model.mark_visited(A0)
    assert not model.mark_visited(A0)
    assert model.visited == {A0}


def test_unvisited_activities_sorted():
    model = make_model()
    model.mark_visited(A0)
    assert model.unvisited_activities() == [A1]
    assert not model.is_complete()
    for node in list(model.nodes):
        model.mark_visited(node)
    assert model.is_complete()


def test_host_of():
    model = make_model()
    assert model.host_of(F1) == A0.name
    assert model.host_of(F2) == A1.name


def test_summary_and_dot():
    model = make_model()
    model.mark_visited(A0)
    assert "|A|=2 |F|=3" in model.summary()
    dot = model.to_dot()
    assert "digraph" in dot and '"A0" -> "A1"' in dot


def test_iteration_views_match_copying_properties():
    aftm = AFTM("com.app", entry=activity_node("com.app.Main"))
    aftm.add_transition(activity_node("com.app.Main"),
                        activity_node("com.app.Second"))
    aftm.add_transition(activity_node("com.app.Main"),
                        fragment_node("com.app.ListFragment"))
    aftm.mark_visited(activity_node("com.app.Main"))
    assert set(aftm.iter_nodes()) == aftm.nodes
    assert set(aftm.iter_edges()) == aftm.edges
    assert set(aftm.iter_visited()) == aftm.visited
    assert aftm.edge_count == len(aftm.edges)
    assert aftm.visited_count == len(aftm.visited)
    assert aftm.is_visited(activity_node("com.app.Main"))
    assert not aftm.is_visited(activity_node("com.app.Second"))


def test_iteration_views_do_not_copy():
    aftm = AFTM("com.app", entry=activity_node("com.app.Main"))
    # The copying properties return fresh sets; the views expose the
    # live internals (documented contract: don't mutate while iterating).
    assert aftm.nodes is not aftm.nodes
    iterator = aftm.iter_nodes()
    aftm.add_node(activity_node("com.app.Second"))
    # Consuming a stale iterator after mutation raises, proving it was
    # a live view rather than a snapshot.
    with pytest.raises(RuntimeError):
        list(iterator)
