"""AFTM graph metrics and the networkx export."""

import networkx as nx
import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.corpus import demo_aftm_example
from repro.static.aftm import AFTM, activity_node, fragment_node
from repro.static.metrics import compute_metrics, to_networkx


def small_model():
    model = AFTM("com.m", entry=activity_node("com.m.A0"))
    model.add_transition(activity_node("com.m.A0"),
                         activity_node("com.m.A1"), trigger="btn")
    model.add_transition(activity_node("com.m.A0"),
                         fragment_node("com.m.F0"), host="com.m.A0")
    model.add_transition(fragment_node("com.m.F0"),
                         fragment_node("com.m.F1"), host="com.m.A0")
    model.mark_visited(activity_node("com.m.A0"))
    return model


def test_networkx_export():
    graph = to_networkx(small_model())
    assert isinstance(graph, nx.DiGraph)
    assert graph.number_of_nodes() == 4
    assert graph.number_of_edges() == 3
    assert graph.nodes["com.m.A0"]["visited"]
    assert not graph.nodes["com.m.A1"]["visited"]
    assert graph.edges["com.m.A0", "com.m.A1"]["kind"] == "E1"
    assert graph.edges["com.m.A0", "com.m.A1"]["trigger"] == "btn"


def test_metrics_values():
    metrics = compute_metrics(small_model())
    assert metrics.activities == 2
    assert metrics.fragments == 2
    assert (metrics.e1, metrics.e2, metrics.e3) == (1, 1, 1)
    assert metrics.edges == 3
    assert metrics.reachable_ratio == 1.0
    assert metrics.visited_ratio == 0.25
    assert metrics.diameter == 2  # A0 -> F0 -> F1
    assert metrics.max_out_degree == 2
    assert metrics.dynamic_edge_ratio == pytest.approx(1 / 3)


def test_metrics_empty_model():
    model = AFTM("com.empty")
    metrics = compute_metrics(model)
    assert metrics.edges == 0
    assert metrics.reachable_ratio == 0.0
    assert metrics.diameter == 0


def test_metrics_after_exploration():
    result = FragDroid(Device()).explore(build_apk(demo_aftm_example()))
    metrics = compute_metrics(result.aftm)
    assert metrics.visited_ratio == 1.0
    assert metrics.e1 >= 1 and metrics.e2 >= 1 and metrics.e3 >= 1
    assert metrics.dynamic_edge_ratio > 0
    assert metrics.as_dict()["activities"] == 2
