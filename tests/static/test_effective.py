"""Effective-component discovery (Section IV-B.2)."""

import pytest

from repro.apk import (
    ActivitySpec,
    AppSpec,
    FragmentSpec,
    ShowFragment,
    StartActivity,
    WidgetSpec,
    build_apk,
)
from repro.smali.apktool import Apktool
from repro.static.effective import (
    declared_activities,
    effective_fragments,
    fragment_hosts,
    fragment_subclasses,
    super_chain,
)


@pytest.fixture
def decoded(demo_apk):
    return Apktool().decode(demo_apk)


def test_declared_activities_from_manifest(decoded, demo_spec):
    names = declared_activities(decoded)
    assert len(names) == len(demo_spec.activities)
    assert "com.example.demo.MainActivity" in names


def test_fragment_subclass_scan(decoded, demo_spec):
    found = fragment_subclasses(decoded)
    for fragment in demo_spec.fragments:
        assert f"com.example.demo.{fragment.name}" in found
    # Listener inner classes must not be classified as fragments.
    assert not any("$" in name for name in found)


def test_transitive_fragment_chain():
    spec = AppSpec(
        package="com.chain",
        activities=[ActivitySpec(
            name="MainActivity", launcher=True,
            hosted_fragments=["LeafFragment"],
            initial_fragment="LeafFragment",
        )],
        fragments=[FragmentSpec(
            name="LeafFragment",
            intermediate_bases=["MiddleFragment"],
        )],
    )
    decoded = Apktool().decode(build_apk(spec))
    found = fragment_subclasses(decoded)
    # Both the intermediate base and the leaf are fragment subclasses...
    assert "com.chain.MiddleFragment" in found
    assert "com.chain.LeafFragment" in found
    # ...but only the instantiated leaf is effective.
    activities = declared_activities(decoded)
    effective = effective_fragments(decoded, activities)
    assert effective == ["com.chain.LeafFragment"]


def test_effective_requires_instantiation(decoded, demo_spec):
    activities = declared_activities(decoded)
    effective = effective_fragments(decoded, activities)
    assert f"com.example.demo.ArgsFragment" in effective  # via popup listener
    assert f"com.example.demo.RawFragment" in effective   # via new F()
    assert len(effective) == len(demo_spec.fragments)


def test_fragment_reachable_via_other_fragment_is_effective():
    spec = AppSpec(
        package="com.ftof",
        activities=[ActivitySpec(name="MainActivity", launcher=True,
                                 initial_fragment="FirstFragment",
                                 hosted_fragments=["SecondFragment"])],
        fragments=[
            FragmentSpec(
                name="FirstFragment",
                widgets=[WidgetSpec(
                    id="go",
                    on_click=ShowFragment("SecondFragment",
                                          "fragment_container"),
                )],
            ),
            FragmentSpec(name="SecondFragment"),
        ],
    )
    decoded = Apktool().decode(build_apk(spec))
    effective = effective_fragments(decoded, declared_activities(decoded))
    assert "com.ftof.SecondFragment" in effective


def test_super_chain_terminates_at_framework(decoded):
    chain = super_chain(decoded, "com.example.demo.HomeFragment")
    assert chain == ["android.app.Fragment"]
    assert super_chain(decoded, "com.example.demo.Missing") == []


def test_fragment_hosts(decoded):
    activities = declared_activities(decoded)
    fragments = effective_fragments(decoded, activities)
    hosts = fragment_hosts(decoded, activities, fragments)
    assert hosts["com.example.demo.HomeFragment"] == [
        "com.example.demo.MainActivity"
    ]
    assert hosts["com.example.demo.RawFragment"] == [
        "com.example.demo.SecondActivity"
    ]
    # DetailFragment is created from HomeFragment, so it inherits the
    # host of HomeFragment.
    assert "com.example.demo.MainActivity" in hosts[
        "com.example.demo.DetailFragment"
    ]
