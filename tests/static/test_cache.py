"""The content-addressed static-analysis cache."""

import json

import pytest

from repro.apk import build_apk
from repro.apk.package import ApkPackage
from repro.errors import PackedApkError
from repro.static import extract_static_info
from repro.static.cache import CACHE_SCHEMA, StaticCache, default_cache_dir
from tests.conftest import make_demo_spec


@pytest.fixture
def cache(tmp_path):
    return StaticCache(directory=tmp_path / "cache")


def _demo_apk(package: str = "com.example.demo"):
    return build_apk(make_demo_spec(package))


# ---------------------------------------------------------------------------
# The digest
# ---------------------------------------------------------------------------

def test_digest_is_stable():
    assert _demo_apk().digest() == _demo_apk().digest()


def test_digest_ignores_dict_build_order():
    apk = _demo_apk()
    shuffled = ApkPackage(
        package=apk.package,
        version_name=apk.version_name,
        manifest_xml=apk.manifest_xml,
        smali_files=dict(reversed(list(apk.smali_files.items()))),
        layout_files=dict(reversed(list(apk.layout_files.items()))),
        public_xml=apk.public_xml,
        packed=apk.packed,
    )
    assert apk.digest() == shuffled.digest()


def test_any_byte_mutation_changes_digest():
    apk = _demo_apk()
    base = apk.digest()
    name, body = next(iter(apk.smali_files.items()))
    apk.smali_files[name] = body + " "
    assert apk.digest() != base
    apk.smali_files[name] = body
    assert apk.digest() == base
    apk.manifest_xml += "\n"
    assert apk.digest() != base


def test_default_cache_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("FRAGDROID_CACHE_DIR", str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
    monkeypatch.delenv("FRAGDROID_CACHE_DIR")
    assert default_cache_dir().name == "fragdroid"


# ---------------------------------------------------------------------------
# Hit equivalence
# ---------------------------------------------------------------------------

def _assert_same_model(cold, warm):
    assert warm.package == cold.package
    assert warm.aftm.entry == cold.aftm.entry
    assert warm.aftm.nodes == cold.aftm.nodes
    assert warm.aftm.edges == cold.aftm.edges
    assert warm.aftm.visited == cold.aftm.visited
    assert warm.activities == cold.activities
    assert warm.fragments == cold.fragments
    assert warm.fragment_hosts == cold.fragment_hosts
    assert warm.dependency == cold.dependency
    assert (sorted(warm.input_dep.known_widgets)
            == sorted(cold.input_dep.known_widgets))
    assert warm.uses_manager == cold.uses_manager
    assert warm.support_library == cold.support_library
    assert warm.static_api_map == cold.static_api_map
    assert warm.view_components_json == cold.view_components_json


def test_hit_returns_equal_static_info(cache):
    cold = extract_static_info(_demo_apk(), cache=cache)
    warm = extract_static_info(_demo_apk(), cache=cache)
    assert cold.decoded is not None      # the miss analyzed for real
    assert warm.decoded is None          # the hit skipped decoding
    _assert_same_model(cold, warm)
    assert cache.hits == 1 and cache.misses == 1 and cache.stores == 1


def test_hits_hydrate_independent_models(cache):
    first = extract_static_info(_demo_apk(), cache=cache)
    second = extract_static_info(_demo_apk(), cache=cache)
    assert first.aftm is not second.aftm
    # Mutating one run's model (as the explorer does) must not leak
    # into the next cache-served run.
    second.aftm.mark_visited(next(iter(second.aftm.nodes)))
    third = extract_static_info(_demo_apk(), cache=cache)
    assert third.aftm.visited == first.aftm.visited


def test_input_values_reapplied_on_hit(cache):
    values = {"password": "hunter2"}
    cold = extract_static_info(_demo_apk(), input_values=values, cache=cache)
    warm = extract_static_info(_demo_apk(), input_values=values, cache=cache)
    assert warm.input_dep.value_for("password") \
        == cold.input_dep.value_for("password")
    # A hit without values gets the pristine template back.
    plain = extract_static_info(_demo_apk(), cache=cache)
    assert plain.input_dep.value_for("password") \
        != warm.input_dep.value_for("password")


def test_cache_counters_traced(cache):
    from repro.obs import Tracer

    tracer = Tracer()
    extract_static_info(_demo_apk(), tracer=tracer, cache=cache)
    extract_static_info(_demo_apk(), tracer=tracer, cache=cache)
    assert tracer.metrics.counter("static.cache.miss") == 1
    assert tracer.metrics.counter("static.cache.store") == 1
    assert tracer.metrics.counter("static.cache.hit") == 1


# ---------------------------------------------------------------------------
# Miss paths
# ---------------------------------------------------------------------------

def test_mutated_apk_misses(cache):
    extract_static_info(_demo_apk(), cache=cache)
    mutated = _demo_apk()
    name = next(iter(mutated.smali_files))
    mutated.smali_files[name] += "\n# patched"
    extract_static_info(mutated, cache=cache)
    assert cache.hits == 0 and cache.misses == 2


def test_corrupted_entry_reads_as_miss(cache):
    apk = _demo_apk()
    extract_static_info(apk, cache=cache)
    entry = cache._entry_path(apk.digest())
    assert entry.exists()
    entry.write_text("{ not json", encoding="utf-8")
    fresh = StaticCache(directory=cache.directory)
    info = extract_static_info(_demo_apk(), cache=fresh)
    assert fresh.hits == 0 and fresh.misses == 1
    assert info.decoded is not None


def test_structurally_broken_entry_reads_as_miss(cache):
    apk = _demo_apk()
    extract_static_info(apk, cache=cache)
    entry = cache._entry_path(apk.digest())
    payload = json.loads(entry.read_text(encoding="utf-8"))
    del payload["static_info"]["aftm"]
    entry.write_text(json.dumps(payload), encoding="utf-8")
    fresh = StaticCache(directory=cache.directory)
    assert fresh.lookup(apk.digest()) is None


def test_other_schema_reads_as_miss(cache):
    apk = _demo_apk()
    extract_static_info(apk, cache=cache)
    entry = cache._entry_path(apk.digest())
    payload = json.loads(entry.read_text(encoding="utf-8"))
    payload["schema"] = CACHE_SCHEMA + 1
    entry.write_text(json.dumps(payload), encoding="utf-8")
    fresh = StaticCache(directory=cache.directory)
    assert fresh.lookup(apk.digest()) is None


def test_packed_apk_never_cached(cache):
    spec = make_demo_spec()
    spec.packed = True
    with pytest.raises(PackedApkError):
        extract_static_info(build_apk(spec), cache=cache)
    assert cache.misses == 0 and cache.stores == 0
    assert cache.stats()["disk_entries"] == 0


# ---------------------------------------------------------------------------
# Tiers, stats, maintenance
# ---------------------------------------------------------------------------

def test_memory_only_cache_hits_without_directory():
    cache = StaticCache()
    extract_static_info(_demo_apk(), cache=cache)
    warm = extract_static_info(_demo_apk(), cache=cache)
    assert cache.hits == 1
    assert warm.decoded is None


def test_lru_evicts_to_disk_tier(tmp_path):
    cache = StaticCache(directory=tmp_path, memory_entries=1)
    extract_static_info(_demo_apk("com.example.first"), cache=cache)
    extract_static_info(_demo_apk("com.example.second"), cache=cache)
    assert cache.stats()["memory_entries"] == 1
    # The evicted entry still hits through the disk tier.
    warm = extract_static_info(_demo_apk("com.example.first"), cache=cache)
    assert cache.hits == 1
    assert warm.decoded is None


def test_stats_and_clear(tmp_path):
    cache = StaticCache(directory=tmp_path)
    extract_static_info(_demo_apk(), cache=cache)
    extract_static_info(_demo_apk(), cache=cache)
    stats = cache.stats()
    assert stats["disk_entries"] == 1
    assert stats["disk_bytes"] > 0
    assert stats["lifetime_hits"] == 1
    assert stats["lifetime_misses"] == 1
    assert stats["lifetime_stores"] == 1
    assert cache.clear() >= 1
    assert cache.stats()["disk_entries"] == 0
    extract_static_info(_demo_apk(), cache=cache)
    assert cache.misses == 2 and cache.stores == 2


def test_rejects_silly_memory_budget():
    with pytest.raises(ValueError):
        StaticCache(memory_entries=0)


def test_exploration_identical_with_warm_cache(tmp_path):
    from repro import Device, FragDroid, FragDroidConfig

    def explore(config):
        result = FragDroid(Device(), config).explore(_demo_apk())
        return (sorted(result.visited_activities),
                sorted(result.visited_fragments),
                result.stats.events,
                len(result.api_invocations))

    baseline = explore(FragDroidConfig())
    cache = StaticCache(directory=tmp_path)
    cold = explore(FragDroidConfig(static_cache=cache))
    warm = explore(FragDroidConfig(static_cache=cache))
    assert cache.hits == 1
    assert baseline == cold == warm
