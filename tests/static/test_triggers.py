"""Static trigger recovery: which widget fires which AFTM edge."""

from repro.apk import build_apk
from repro.corpus import AppPlan, build_app
from repro.static.extractor import extract_static_info
from repro.static.triggers import (
    LazyTriggerMap,
    extract_trigger_map,
    trigger_map_of,
)


def _info(plan):
    return extract_static_info(build_apk(build_app(plan)))


def test_click_wired_edges_have_bound_widgets():
    info = _info(AppPlan("com.trig.bound", visited_activities=3))
    trigger_map = extract_trigger_map(
        info.decoded, info.activities, info.fragments)
    bound = [b for b in trigger_map.bindings if b.bound]
    assert bound, "plain click navigation must yield bound triggers"
    for binding in bound:
        assert binding.widget and not binding.widget.startswith("0x")
        assert binding.targets
        assert binding.source not in binding.targets
        assert trigger_map.widget_for(
            binding.source, binding.targets[0]) is not None


def test_popup_menu_items_surface_as_unbound_listeners():
    info = _info(AppPlan("com.trig.popup", visited_activities=2,
                         popup_locked=1))
    trigger_map = extract_trigger_map(
        info.decoded, info.activities, info.fragments)
    unbound = [b for b in trigger_map.bindings if not b.bound]
    assert unbound, "popup items are constructed but never view-bound"
    locked = [b for b in unbound
              if any("Overflow" in t for t in b.targets)]
    assert locked
    source, target = locked[0].source, locked[0].targets[0]
    assert trigger_map.widget_for(source, target) is None
    assert trigger_map.unbound_for(source, target) is not None


def test_lazy_map_answers_exactly_like_the_eager_one():
    info = _info(AppPlan("com.trig.lazy", visited_activities=3,
                         login_locked=1, popup_locked=1))
    eager = extract_trigger_map(
        info.decoded, info.activities, info.fragments)
    lazy = LazyTriggerMap(info.decoded, info.activities, info.fragments)
    queried = set()
    for binding in eager.bindings:
        for target in binding.targets:
            queried.add((binding.source, target))
            assert lazy.widget_for(binding.source, target) == \
                eager.widget_for(binding.source, target)
            assert lazy.bindings_for(binding.source, target) == \
                eager.bindings_for(binding.source, target)
    assert queried
    # Only the queried sources were ever scanned.
    assert set(lazy._by_source) == {source for source, _ in queried}


def test_trigger_map_of_memoizes_and_degrades_without_decoded():
    info = _info(AppPlan("com.trig.memo", visited_activities=2))
    first = trigger_map_of(info)
    assert first is not None
    assert trigger_map_of(info) is first
    info.decoded = None
    assert trigger_map_of(info) is None


def test_extraction_is_deterministic():
    plan = AppPlan("com.trig.det", visited_activities=3, login_locked=1)
    info_a, info_b = _info(plan), _info(plan)
    map_a = extract_trigger_map(
        info_a.decoded, info_a.activities, info_a.fragments)
    map_b = extract_trigger_map(
        info_b.decoded, info_b.activities, info_b.fragments)
    assert map_a.bindings == map_b.bindings
