"""The method-level call graph and static API reachability."""

import pytest

from repro.apk import build_apk
from repro.smali.apktool import Apktool
from repro.static.callgraph import (
    MethodNode,
    build_call_graph,
    component_roots,
    reachable_methods,
    statically_reachable_apis,
)
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def decoded():
    return Apktool().decode(build_apk(make_full_demo_spec()))


def test_graph_includes_all_declared_methods(decoded):
    graph = build_call_graph(decoded)
    declared = sum(len(c.methods) for c in decoded.classes)
    assert len(graph) >= declared


def test_fragment_factory_edge(decoded):
    graph = build_call_graph(decoded)
    # The popup listener calls ArgsFragment.newInstance — a declared
    # method, so it is an internal edge, not an external call.
    factory = MethodNode("com.example.demo.ArgsFragment", "newInstance")
    callers = [n for n in graph.nodes if factory in graph.callees(n)]
    assert callers, "newInstance must have at least one caller"


def test_component_roots(decoded):
    roots = component_roots(decoded, "com.example.demo.MainActivity")
    names = {root.name for root in roots}
    assert "onCreate" in names
    assert "onClick" in names  # listener inner classes


def test_reachability_closure(decoded):
    graph = build_call_graph(decoded)
    roots = component_roots(decoded, "com.example.demo.MainActivity")
    closure = reachable_methods(graph, roots)
    assert set(roots) <= closure


def test_static_api_reachability_is_superset_of_dynamic(decoded):
    from repro import Device, FragDroid

    apk = build_apk(make_full_demo_spec())
    components = [
        "com.example.demo.MainActivity",
        "com.example.demo.SettingsActivity",
        "com.example.demo.HomeFragment",
    ]
    static_map = statically_reachable_apis(decoded, components)
    assert "phone/getDeviceId" in static_map["com.example.demo.MainActivity"]
    assert "storage/sdcard" in static_map["com.example.demo.SettingsActivity"]

    result = FragDroid(Device()).explore(apk)
    dynamic: dict = {}
    for invocation in result.api_invocations:
        dynamic.setdefault(invocation.component.cls, set()).add(
            invocation.api
        )
    for component in components:
        assert dynamic.get(component, set()) <= static_map[component]


def test_static_reachability_sees_unvisited_code(decoded):
    # HiddenActivity is never visited dynamically, but its statically
    # reachable API set is still computable (empty here, but present).
    static_map = statically_reachable_apis(
        decoded, ["com.example.demo.HiddenActivity"]
    )
    assert "com.example.demo.HiddenActivity" in static_map