"""Algorithm 3 (resource dependency) and the input-dependency file."""

import json

import pytest

from repro.smali.apktool import Apktool
from repro.static.extractor import extract_static_info
from repro.static.input_dep import (
    DEFAULT_TEXT,
    InputDependency,
    extract_input_dependency,
)


@pytest.fixture
def info(demo_apk):
    return extract_static_info(demo_apk)


def test_widget_bound_to_activity(info):
    activity, fragment = info.resource_dep.owner_of("btn_next")
    assert activity == "com.example.demo.MainActivity"
    assert fragment is None


def test_widget_bound_to_fragment(info):
    activity, fragment = info.resource_dep.owner_of("home_list")
    assert activity is None
    assert fragment == "com.example.demo.HomeFragment"


def test_passive_fragment_widget_bound_by_layout_membership(info):
    _, fragment = info.resource_dep.owner_of("news_row")
    assert fragment == "com.example.demo.NewsFragment"


def test_unknown_widget_unbound(info):
    assert info.resource_dep.owner_of("anon:Raw:raw_row") == (None, None)


def test_unmanaged_fragment_has_no_bindings(info):
    assert info.resource_dep.widgets_of_fragment(
        "com.example.demo.RawFragment"
    ) == []


def test_identify_fragments_from_visible_ids(info):
    found = info.resource_dep.identify_fragments(
        ["btn_next", "home_list", "nonexistent"]
    )
    assert found == {"com.example.demo.HomeFragment"}


def test_bindings_unique_per_owner(info):
    # A widget id may legitimately recur across layouts (e.g. the shared
    # "fragment_container"); per owner it must be unique.
    triples = [(b.widget_id, b.activity, b.fragment)
               for b in info.resource_dep.bindings]
    assert len(triples) == len(set(triples))
    # Identification uses the first binding and stays deterministic.
    assert info.resource_dep.owner_of("fragment_container")[0] is not None


# -- input dependency ---------------------------------------------------------------

def test_input_template_lists_edit_texts(demo_apk):
    decoded = Apktool().decode(demo_apk)
    dep = extract_input_dependency(decoded)
    assert "password" in dep.known_widgets


def test_value_preference_and_default():
    dep = InputDependency(package="com.x")
    assert dep.value_for("field") == DEFAULT_TEXT
    dep.provide("field", "Boston")
    assert dep.value_for("field") == "Boston"
    assert dep.has_value("field")


def test_json_round_trip():
    dep = InputDependency(package="com.x")
    dep.known_widgets = ["a", "b"]
    dep.provide("a", "val")
    parsed = InputDependency.from_json(dep.to_json())
    assert parsed.package == "com.x"
    assert parsed.known_widgets == ["a", "b"]
    assert parsed.value_for("a") == "val"


def test_view_components_json(info):
    records = json.loads(info.view_components_json)
    widgets = {r["widget"] for r in records}
    assert "btn_next" in widgets
    assert all("layout" in r and "resource_id" in r for r in records)
