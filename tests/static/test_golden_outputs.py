"""Byte-identical static outputs against a committed golden fixture.

``golden/static_outputs.json`` was captured from the pipeline *before*
the profile-driven rewrite (single-pass lexer, fused pattern scanner,
interned symbols, batched digests).  Every Table-I app and a 60-app
market sample must still produce the exact same APK digests and the
exact same canonical ``StaticInfo`` serialization — the optimizations
are only allowed to change how fast the answers arrive, never the
answers.  Regenerate the fixture only for *intentional* model changes.
"""

import hashlib
import json
import pathlib

import pytest

from repro.apk.builder import build_apk
from repro.corpus.market import generate_market
from repro.corpus.table1_apps import build_table1_app, table1_packages
from repro.static.cache import static_info_to_dict
from repro.static.extractor import extract_static_info

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "static_outputs.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def _static_sha(info) -> str:
    canonical = json.dumps(static_info_to_dict(info), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@pytest.mark.parametrize("package", sorted(GOLDEN["table1"]))
def test_table1_outputs_byte_identical(package):
    golden = GOLDEN["table1"][package]
    apk = build_apk(build_table1_app(package))
    assert apk.digest() == golden["apk_digest"]
    info = extract_static_info(apk)
    assert len(info.activities) == golden["activities"]
    assert len(info.fragments) == golden["fragments"]
    assert len(info.aftm.edges) == golden["edges"]
    assert _static_sha(info) == golden["static_sha256"]


def test_market_sample_outputs_byte_identical():
    apps = {app.package: app for app in generate_market(count=60, seed=2018)}
    assert set(apps) == set(GOLDEN["market"])
    for package, golden in sorted(GOLDEN["market"].items()):
        apk = apps[package].build()
        assert apk.digest() == golden["apk_digest"], package
        if golden.get("packed"):
            continue
        info = extract_static_info(apk)
        assert _static_sha(info) == golden["static_sha256"], package
