"""Decompiler robustness: jd-core equivalents must not crash on any
class the assembler round-trips."""

from hypothesis import given, settings, strategies as st

from repro.smali.javagen import JavaDecompiler
from repro.smali.model import Instruction, MethodRef, SmaliClass, SmaliMethod

_identifiers = st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True)
_class_names = st.builds(
    lambda a, b: f"com.{a}.{b.capitalize()}", _identifiers, _identifiers
)
_registers = st.from_regex(r"[vp][0-9]", fullmatch=True)
_types = st.sampled_from(
    ["void", "int", "boolean", "java.lang.String", "android.view.View",
     "android.content.Intent"]
)


@st.composite
def any_instruction(draw):
    choice = draw(st.integers(0, 11))
    if choice == 0:
        return Instruction("nop")
    if choice == 1:
        return Instruction("const-string",
                           (draw(_registers), draw(st.text(max_size=12))))
    if choice == 2:
        return Instruction("const-class",
                           (draw(_registers), draw(_class_names)))
    if choice == 3:
        return Instruction("const",
                           (draw(_registers), draw(st.integers(0, 2**31 - 1))))
    if choice == 4:
        return Instruction("new-instance",
                           (draw(_registers), draw(_class_names)))
    if choice == 5:
        return Instruction("move-result-object", (draw(_registers),))
    if choice == 6:
        return Instruction("check-cast",
                           (draw(_registers), draw(_class_names)))
    if choice == 7:
        return Instruction("if-eqz", (draw(_registers), "cond_fail_1"))
    if choice == 8:
        return Instruction("goto", ("cond_end_1",))
    if choice == 9:
        return Instruction("label",
                           (draw(st.sampled_from(
                               ["cond_fail_1", "cond_end_1", "other"])),))
    if choice == 10:
        return Instruction(
            "iget-object",
            (draw(_registers), "p0", "com.x.Y->this$0:Lcom/x/Z;"),
        )
    ref = MethodRef(
        draw(_class_names),
        draw(st.sampled_from(
            ["<init>", "startActivity", "newInstance", "beginTransaction",
             "replace", "commit", "getFragmentManager", "setContentView",
             "setAction", "randomMethod"]
        )),
        tuple(draw(st.lists(_types.filter(lambda t: t != "void"),
                            max_size=3))),
        draw(_types),
    )
    opcode = draw(st.sampled_from(
        ["invoke-virtual", "invoke-static", "invoke-direct", "invoke-super"]
    ))
    regs = tuple(draw(st.lists(_registers, max_size=3, unique=True)))
    return Instruction(opcode, regs + (ref,))


@st.composite
def arbitrary_classes(draw):
    cls = SmaliClass(name=draw(_class_names), super_name=draw(_class_names))
    for index in range(draw(st.integers(1, 3))):
        method = SmaliMethod(name=f"m{index}")
        method.instructions = draw(st.lists(any_instruction(), max_size=12))
        method.instructions.append(Instruction("return-void"))
        cls.methods.append(method)
    return cls


@settings(max_examples=100, deadline=None)
@given(arbitrary_classes())
def test_decompiler_total_on_arbitrary_instruction_streams(cls):
    java = JavaDecompiler().decompile_class(cls)
    assert java.startswith("package com.")
    assert java.rstrip().endswith("}")


@settings(max_examples=50, deadline=None)
@given(arbitrary_classes())
def test_decompile_unit_with_self_as_inner(cls):
    inner = SmaliClass(name=f"{cls.name}$1", super_name="java.lang.Object")
    inner.methods.append(SmaliMethod(name="onClick"))
    inner.methods[0].instructions.append(Instruction("return-void"))
    unit = JavaDecompiler().decompile_unit(cls, [inner])
    assert "class" in unit