"""Property-based checks over the app generator and the full pipeline.

Any generated plan must compile to an APK whose static artifacts are
self-consistent and whose exploration terminates with coverage exactly
matching the plan's construction — the strongest invariant in the repo.
"""

from hypothesis import given, settings, strategies as st

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.corpus.synth import AppPlan, build_app
from repro.smali.apktool import Apktool
from repro.smali.assemble import parse_class
from repro.static import extract_static_info


@st.composite
def plans(draw):
    index = draw(st.integers(0, 10**6))
    visited = draw(st.integers(1, 6))
    login = draw(st.integers(0, 2))
    popup = draw(st.integers(0, 2))
    nav_locked = draw(st.integers(0, 2))
    nav_forced = draw(st.integers(0, 2))
    fragments = draw(st.integers(0, 6))
    args = draw(st.integers(0, 2))
    unmanaged = draw(st.integers(0, 2))
    locked = login + popup + nav_locked
    hidden = draw(st.integers(0, 3)) if locked else 0
    return AppPlan(
        package=f"com.prop.app{index}",
        visited_activities=visited,
        login_locked=login,
        popup_locked=popup,
        navdrawer_locked=nav_locked,
        navdrawer_forced=nav_forced,
        visited_fragments=fragments,
        args_fragments=args,
        unmanaged_fragments=unmanaged,
        hidden_fragments=hidden,
        use_support=draw(st.booleans()),
    )


@settings(max_examples=25, deadline=None)
@given(plans())
def test_generated_apps_compile_and_decode(plan):
    apk = build_apk(build_app(plan))
    decoded = Apktool().decode(apk)
    # Every smali file re-parses and matches its path.
    for path, text in apk.smali_files.items():
        assert parse_class(text).file_name == path
    assert decoded.manifest.launcher_activity is not None


@settings(max_examples=20, deadline=None)
@given(plans())
def test_static_sums_always_match_plan(plan):
    info = extract_static_info(build_apk(build_app(plan)))
    assert len(info.activities) == plan.total_activities
    assert len(info.fragments) == plan.total_fragments


@settings(max_examples=10, deadline=None)
@given(plans())
def test_exploration_terminates_with_planned_coverage(plan):
    result = FragDroid(Device()).explore(build_apk(build_app(plan)))
    assert len(result.visited_activities) == plan.expected_visited_activities
    assert len(result.visited_fragments) == plan.expected_visited_fragments
    # Visited sets are subsets of the static universe.
    assert result.visited_activities <= set(result.info.activities)
    assert result.visited_fragments <= set(result.info.fragments)
