"""Property-based AFTM invariants (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.static.aftm import (
    AFTM,
    EdgeKind,
    NodeKind,
    activity_node,
    fragment_node,
)

_activities = st.integers(0, 5).map(lambda i: activity_node(f"com.p.A{i}"))
_fragments = st.integers(0, 5).map(lambda i: fragment_node(f"com.p.F{i}"))
_nodes = st.one_of(_activities, _fragments)


@st.composite
def raw_transitions(draw):
    src = draw(_nodes)
    dst = draw(_nodes)
    src_host = (draw(_activities).name
                if src.kind is NodeKind.FRAGMENT else None)
    dst_host = (draw(_activities).name
                if dst.kind is NodeKind.FRAGMENT else None)
    return (src, dst, src_host, dst_host)


@st.composite
def models(draw):
    model = AFTM("com.p", entry=activity_node("com.p.A0"))
    for src, dst, src_host, dst_host in draw(
        st.lists(raw_transitions(), max_size=20)
    ):
        if src == dst:
            continue
        model.add_raw_transition(src, dst, src_host=src_host,
                                 dst_host=dst_host)
    return model


@settings(max_examples=80, deadline=None)
@given(models())
def test_only_three_edge_kinds_exist(model):
    for edge in model.edges:
        assert edge.kind in (EdgeKind.E1, EdgeKind.E2, EdgeKind.E3)
        if edge.kind is EdgeKind.E1:
            assert edge.src.kind is NodeKind.ACTIVITY
            assert edge.dst.kind is NodeKind.ACTIVITY
        else:
            assert edge.host is not None
        # No fragment-to-activity edge survives the merge.
        assert not (edge.src.kind is NodeKind.FRAGMENT
                    and edge.dst.kind is NodeKind.ACTIVITY)


@settings(max_examples=80, deadline=None)
@given(models())
def test_no_duplicate_edges(model):
    keys = [(e.src, e.dst, e.host) for e in model.edges]
    assert len(keys) == len(set(keys))


@settings(max_examples=80, deadline=None)
@given(models())
def test_bfs_covers_exactly_reachable(model):
    order = model.bfs_order()
    assert len(order) == len(set(order))
    assert set(order) == model.reachable_from_entry()
    for node in order:
        assert node in model


@settings(max_examples=80, deadline=None)
@given(models())
def test_path_to_every_reachable_node(model):
    for node in model.reachable_from_entry():
        path = model.path_to(node)
        assert path is not None
        # Path is connected and ends at the target.
        if path:
            assert path[0].src == model.entry
            assert path[-1].dst == node
            for left, right in zip(path, path[1:]):
                assert left.dst == right.src


@settings(max_examples=80, deadline=None)
@given(models())
def test_prune_removes_exactly_isolated(model):
    isolated = model.isolated_nodes()
    removed = model.prune_isolated()
    assert removed == isolated
    assert model.isolated_nodes() == set()


@settings(max_examples=50, deadline=None)
@given(models(), st.data())
def test_visited_monotonic(model, data):
    nodes = sorted(model.nodes)
    sample = data.draw(st.lists(st.sampled_from(nodes), max_size=10)
                       if nodes else st.just([]))
    seen = set()
    for node in sample:
        first = model.mark_visited(node)
        assert first == (node not in seen)
        seen.add(node)
    assert model.visited == seen
    assert model.unvisited() == model.nodes - seen
