"""Property: any generated app survives disk round trips intact."""

from hypothesis import given, settings, strategies as st

from repro.apk import build_apk
from repro.apk.apkfile import load_apk, save_apk
from repro.apk.serialize import spec_from_dict, spec_to_dict
from repro.corpus.synth import AppPlan, build_app


@st.composite
def plans(draw):
    return AppPlan(
        package=f"com.diskprop.a{draw(st.integers(0, 10**6))}",
        visited_activities=draw(st.integers(1, 4)),
        login_locked=draw(st.integers(0, 1)),
        popup_locked=draw(st.integers(0, 1)),
        navdrawer_locked=draw(st.integers(0, 1)),
        visited_fragments=draw(st.integers(0, 4)),
        args_fragments=draw(st.integers(0, 1)),
        unmanaged_fragments=draw(st.integers(0, 1)),
        use_support=draw(st.booleans()),
    )


@settings(max_examples=15, deadline=None)
@given(plans())
def test_spec_dict_round_trip_compiles_identically(plan):
    spec = build_app(plan)
    restored = spec_from_dict(spec_to_dict(spec))
    assert build_apk(restored).smali_files == build_apk(spec).smali_files
    assert build_apk(restored).manifest_xml == build_apk(spec).manifest_xml


@settings(max_examples=10, deadline=None)
@given(plans())
def test_disk_round_trip(tmp_path_factory, plan):
    tmp = tmp_path_factory.mktemp("apks")
    apk = build_apk(build_app(plan))
    loaded = load_apk(save_apk(apk, tmp / f"{plan.package}.apk"))
    assert loaded.smali_files == apk.smali_files
    assert loaded.layout_files == apk.layout_files
    assert loaded.public_xml == apk.public_xml
    assert spec_to_dict(loaded.runtime_spec()) == \
        spec_to_dict(apk.runtime_spec())