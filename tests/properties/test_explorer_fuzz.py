"""Fuzzing the explorer with arbitrary app specs.

Unlike the plan-based generator (which builds well-formed obstacle
apps), this strategy wires random widgets to random actions — including
crashes, dialogs, self-links and dead ends — and asserts the explorer's
safety invariants: it never raises, never exceeds its budget by more
than one sweep, and reports visited sets inside the static universe.
"""

from hypothesis import given, settings, strategies as st

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import (
    ActivitySpec,
    AppSpec,
    Crash,
    FinishActivity,
    FragmentSpec,
    InvokeApi,
    Noop,
    OpenDrawer,
    ShowDialog,
    ShowFragment,
    StartActivity,
    WidgetSpec,
    build_apk,
)
from repro.types import WidgetKind


@st.composite
def app_specs(draw):
    index = draw(st.integers(0, 10**6))
    n_activities = draw(st.integers(1, 4))
    n_fragments = draw(st.integers(0, 3))
    activity_names = [f"Act{i}Activity" for i in range(n_activities)]
    fragment_names = [f"Frag{i}Fragment" for i in range(n_fragments)]

    def actions():
        choices = [
            st.just(Noop()),
            st.sampled_from(activity_names).map(StartActivity),
            st.just(Crash("fuzz")),
            st.just(FinishActivity()),
            st.just(ShowDialog("fuzz dialog")),
            st.just(InvokeApi("phone/getDeviceId")),
        ]
        if fragment_names:
            choices.append(
                st.sampled_from(fragment_names).map(
                    lambda f: ShowFragment(f, "fragment_container")
                )
            )
        return st.one_of(choices)

    activities = []
    for i, name in enumerate(activity_names):
        widgets = [
            WidgetSpec(id=f"w_{i}_{j}", text=f"w{j}",
                       on_click=draw(actions()))
            for j in range(draw(st.integers(0, 3)))
        ]
        activities.append(
            ActivitySpec(
                name=name,
                launcher=(i == 0),
                widgets=widgets,
                hosted_fragments=list(fragment_names),
                initial_fragment=(fragment_names[0]
                                  if fragment_names and i == 0 else None),
                container_id="fragment_container" if fragment_names else None,
            )
        )
    fragments = [
        FragmentSpec(
            name=name,
            widgets=[WidgetSpec(id=f"f_{k}_row", kind=WidgetKind.LIST_ITEM,
                                text="row", on_click=draw(actions()))],
        )
        for k, name in enumerate(fragment_names)
    ]
    return AppSpec(package=f"com.fuzz.a{index}", activities=activities,
                   fragments=fragments)


@settings(max_examples=20, deadline=None)
@given(app_specs())
def test_explorer_never_crashes_on_arbitrary_apps(spec):
    config = FragDroidConfig(max_events=600)
    result = FragDroid(Device(), config).explore(build_apk(spec))
    assert result.visited_activities <= set(result.info.activities)
    assert result.visited_fragments <= set(result.info.fragments)
    assert result.stats.events <= config.max_events + 50
    # The trace and the stats agree on reflection failures.
    failures = [e for e in result.trace if e.kind == "reflection-failure"]
    assert len(failures) == result.stats.reflection_failures


@settings(max_examples=10, deadline=None)
@given(app_specs(), st.integers(0, 2**16))
def test_monkey_never_crashes_on_arbitrary_apps(spec, seed):
    from repro.baselines import Monkey

    result = Monkey(Device(), seed=seed).run(build_apk(spec),
                                             event_count=120)
    assert result.events == 120