"""The flat public API surface."""

import pytest

import repro


@pytest.mark.parametrize("name", sorted(set(repro.__all__) - {"__version__"}))
def test_every_export_resolves(name):
    attribute = getattr(repro, name)
    assert attribute is not None


def test_unknown_attribute_raises():
    with pytest.raises(AttributeError):
        repro.not_a_thing  # noqa: B018


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_quickstart_docstring_workflow_runs():
    """The workflow shown in the package docstring must actually work."""
    from repro import Device, FragDroid, build_apk
    from repro.corpus import demo_tabbed_app

    device = Device()
    apk = build_apk(demo_tabbed_app())
    result = FragDroid(device).explore(apk)
    assert "coverage" in result.coverage_report() or \
        "activities" in result.coverage_report()


def test_subpackages_importable():
    import importlib

    for name in ("repro.apk", "repro.smali", "repro.android", "repro.adb",
                 "repro.robotium", "repro.static", "repro.core",
                 "repro.baselines", "repro.corpus", "repro.bench",
                 "repro.rnr", "repro.cli"):
        importlib.import_module(name)