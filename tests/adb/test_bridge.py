"""ADB bridge: commands, logs, instrumentation runner."""

import pytest

from repro.errors import DeviceError, SecurityException


def test_install_logs_command(adb, demo_apk):
    assert adb.install(demo_apk) == "Success"
    assert adb.command_log[0].startswith("adb install com.example.demo")


def test_am_start_launcher_command_shape(adb, demo_apk):
    adb.install(demo_apk)
    assert adb.am_start_launcher("com.example.demo")
    command = adb.command_log[-1]
    assert "am start -n com.example.demo/com.example.demo.MainActivity" in command
    assert "-a android.intent.action.MAIN" in command
    assert "-c android.intent.category.LAUNCHER" in command


def test_am_start_unexported_denied(adb, demo_apk):
    adb.install(demo_apk)
    with pytest.raises(SecurityException):
        adb.am_start("com.example.demo/.SecondActivity")


def test_uninstall(adb, demo_apk):
    adb.install(demo_apk)
    adb.uninstall("com.example.demo")
    assert not adb.device.is_installed("com.example.demo")


def test_instrumentation_registration_and_run(adb, demo_apk):
    adb.install(demo_apk)
    ran = []
    adb.register_instrumentation("com.example.demo.test.T1",
                                 lambda: ran.append(True))
    adb.am_instrument("com.example.demo.test.T1")
    assert ran == [True]
    assert any("am instrument -w com.example.demo.test.T1" in c
               for c in adb.command_log)


def test_instrumentation_unknown_package(adb):
    with pytest.raises(DeviceError):
        adb.am_instrument("com.nope.test.T")


def test_logcat_passthrough(adb, demo_apk):
    adb.install(demo_apk)
    lines = adb.logcat(tag="PackageManager")
    assert lines and "installed" in lines[0]


def test_every_command_has_a_counter(device, demo_apk):
    from repro.adb import Adb
    from repro.obs import Tracer

    tracer = Tracer()
    adb = Adb(device, tracer=tracer)
    adb.install(demo_apk)
    adb.am_start_launcher("com.example.demo")
    adb.logcat()
    adb.uninstall("com.example.demo")
    counters = tracer.metrics.counters()
    assert counters["adb.installs"] == 1
    assert counters["adb.am_start"] == 1
    assert counters["adb.logcat"] == 1
    assert counters["adb.uninstalls"] == 1
