"""Manifest instrumentation: the forced-start rewrite of Section VI-A."""

from repro.adb import Adb, instrument_manifest
from repro.apk.manifest import ACTION_MAIN, Manifest


def test_every_activity_gains_main_action(demo_apk):
    instrumented = instrument_manifest(demo_apk)
    manifest = Manifest.from_xml(instrumented.manifest_xml)
    for decl in manifest.activities:
        assert decl.exported
        assert any(ACTION_MAIN in f.actions for f in decl.intent_filters)


def test_original_manifest_untouched(demo_apk):
    before = demo_apk.manifest_xml
    instrument_manifest(demo_apk)
    assert demo_apk.manifest_xml == before
    manifest = Manifest.from_xml(before)
    assert not manifest.activity(".SecondActivity").exported


def test_forced_start_works_after_instrumentation(device, demo_apk):
    adb = Adb(device)
    adb.install(instrument_manifest(demo_apk))
    assert adb.am_force_start("com.example.demo/.SecondActivity")
    assert device.current_activity_name() == "com.example.demo.SecondActivity"


def test_instrumented_version_name_marked(demo_apk):
    instrumented = instrument_manifest(demo_apk)
    assert "instrumented" in instrumented.version_name
    assert instrumented.runtime_spec() is demo_apk.runtime_spec()


def test_launcher_filter_not_duplicated(demo_apk):
    instrumented = instrument_manifest(demo_apk)
    manifest = Manifest.from_xml(instrumented.manifest_xml)
    launcher = manifest.activity(".MainActivity")
    main_count = sum(
        1 for f in launcher.intent_filters if ACTION_MAIN in f.actions
    )
    assert main_count == 1
