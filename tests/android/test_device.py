"""Device basics: install, launch, intent resolution, exported checks."""

import pytest

from repro.android import Device
from repro.apk import build_apk
from repro.errors import (
    ActivityNotFoundError,
    AppNotInstalledError,
    SecurityException,
)
from repro.types import ComponentName


def test_install_and_list(device, demo_apk):
    device.install(demo_apk)
    assert device.is_installed("com.example.demo")
    assert device.installed_packages() == ["com.example.demo"]


def test_uninstall(device, demo_apk):
    device.install(demo_apk)
    device.uninstall("com.example.demo")
    assert not device.is_installed("com.example.demo")


def test_launch_requires_install(device):
    with pytest.raises(AppNotInstalledError):
        device.launch_app("com.example.demo")


def test_launch_app(device, demo_apk):
    device.install(demo_apk)
    assert device.launch_app("com.example.demo")
    assert device.current_activity_name() == "com.example.demo.MainActivity"
    assert device.app_alive


def test_initial_fragment_attached_on_launch(launched):
    assert launched.current_fragment_classes() == [
        "com.example.demo.HomeFragment"
    ]


def test_shell_start_of_unexported_activity_denied(device, demo_apk):
    device.install(demo_apk)
    with pytest.raises(SecurityException):
        device.start_activity(
            ComponentName("com.example.demo", ".SecondActivity")
        )


def test_start_unknown_activity(device, demo_apk):
    device.install(demo_apk)
    with pytest.raises(ActivityNotFoundError):
        device.start_activity(ComponentName("com.example.demo", ".Ghost"))


def test_implicit_intent_resolution(device, demo_apk):
    device.install(demo_apk)
    with pytest.raises(ActivityNotFoundError):
        device.start_activity(action="com.example.demo.action.MISSING")


def test_force_stop_clears_foreground(launched):
    launched.force_stop("com.example.demo")
    assert not launched.app_alive
    assert launched.current_activity_name() is None
    assert launched.ui_dump() == []


def test_ui_dump_lists_content_widgets(launched):
    ids = [w.widget_id for w in launched.ui_dump()]
    assert "btn_next" in ids
    assert "home_list" in ids  # fragment widget included
    assert "nav_settings" not in ids  # drawer hidden until opened


def test_steps_increment_on_events(launched):
    before = launched.steps
    launched.press_back()
    launched.swipe_from_left()
    assert launched.steps == before + 2


def test_two_apps_coexist(device, demo_apk):
    from tests.conftest import make_demo_spec

    device.install(demo_apk)
    other = build_apk(make_demo_spec("com.other.app"))
    device.install(other)
    assert device.launch_app("com.other.app")
    assert device.current_activity_name() == "com.other.app.MainActivity"
    assert device.launch_app("com.example.demo")
    assert device.current_activity_name() == "com.example.demo.MainActivity"
