"""FragmentTransaction.addToBackStack semantics."""

import pytest

from repro.apk import (
    ActivitySpec,
    AppSpec,
    FragmentSpec,
    ShowFragment,
    WidgetSpec,
    build_apk,
)
from repro.types import WidgetKind


@pytest.fixture
def stacked(device, adb):
    spec = AppSpec(
        package="com.stack",
        activities=[
            ActivitySpec(
                name="MainActivity", launcher=True,
                initial_fragment="ListFragment",
                widgets=[
                    WidgetSpec(
                        id="open_detail", text="detail",
                        on_click=ShowFragment(
                            "DetailFragment", "fragment_container",
                            add_to_back_stack=True,
                        ),
                    ),
                    WidgetSpec(
                        id="open_flat", text="flat",
                        on_click=ShowFragment(
                            "FlatFragment", "fragment_container",
                        ),
                    ),
                ],
            ),
        ],
        fragments=[
            FragmentSpec(name="ListFragment", widgets=[
                WidgetSpec(id="list_row", kind=WidgetKind.LIST_ITEM)]),
            FragmentSpec(name="DetailFragment", widgets=[
                WidgetSpec(id="detail_row", kind=WidgetKind.LIST_ITEM)]),
            FragmentSpec(name="FlatFragment", widgets=[
                WidgetSpec(id="flat_row", kind=WidgetKind.LIST_ITEM)]),
        ],
    )
    adb.install(build_apk(spec))
    adb.am_start_launcher("com.stack")
    return device


def test_back_reverses_stacked_transaction(stacked):
    stacked.click_widget("open_detail")
    assert stacked.current_fragment_classes() == ["com.stack.DetailFragment"]
    stacked.press_back()
    # The transaction is reversed: ListFragment is back, activity stays.
    assert stacked.current_fragment_classes() == ["com.stack.ListFragment"]
    assert stacked.current_activity_name() == "com.stack.MainActivity"


def test_back_stack_entry_count(stacked):
    manager = stacked.foreground.top_activity.fragment_manager
    assert manager.back_stack_entry_count == 0
    stacked.click_widget("open_detail")
    assert manager.back_stack_entry_count == 1
    stacked.press_back()
    assert manager.back_stack_entry_count == 0


def test_unstacked_transaction_not_reversed(stacked):
    stacked.click_widget("open_flat")
    assert stacked.current_fragment_classes() == ["com.stack.FlatFragment"]
    stacked.press_back()
    # No back-stack entry: back exits the (root) activity.
    assert not stacked.app_alive


def test_nested_back_stack(stacked):
    stacked.click_widget("open_detail")
    # open_detail is gone now (replaced widgets); rebuild via manager.
    app = stacked.foreground
    activity = app.top_activity
    app.attach_fragment(activity, "FlatFragment", "fragment_container",
                        mode="replace", via="transaction",
                        add_to_back_stack=True)
    assert stacked.current_fragment_classes() == ["com.stack.FlatFragment"]
    stacked.press_back()
    assert stacked.current_fragment_classes() == ["com.stack.DetailFragment"]
    stacked.press_back()
    assert stacked.current_fragment_classes() == ["com.stack.ListFragment"]


def test_add_to_back_stack_in_smali(stacked):
    from repro.smali.apktool import Apktool

    apk = stacked._installed["com.stack"].apk
    decoded = Apktool().decode(apk)
    listener = decoded.class_by_name("com.stack.MainActivity$1")
    refs = [r.name for m in listener.methods for r in m.invokes()]
    assert "addToBackStack" in refs