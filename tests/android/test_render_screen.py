"""The ASCII screen renderer."""

def test_renders_activity_header(launched):
    sketch = launched.render_screen()
    assert "com.example.demo.MainActivity" in sketch
    assert sketch.startswith("┌─")
    assert sketch.rstrip().endswith("┘")


def test_renders_widget_labels(launched):
    sketch = launched.render_screen()
    assert "Next" in sketch
    assert "[Button]" in sketch


def test_renders_entered_text(launched):
    launched.enter_text("password", "secret")
    assert "'secret'" in launched.render_screen()


def test_renders_drawer_layer(launched):
    launched.swipe_from_left()
    sketch = launched.render_screen()
    assert "≡" in sketch
    assert "Settings" in sketch


def test_renders_dialog_layer(launched):
    launched.click_widget("btn_login")  # wrong creds -> dialog
    sketch = launched.render_screen()
    assert "□" in sketch
    assert "Wrong password" in sketch


def test_renders_empty_screen(device):
    assert device.render_screen() == "[no app in foreground]"