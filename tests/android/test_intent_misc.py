"""Intent semantics and remaining small units."""

import pytest

from repro.android.intent import Intent
from repro.types import ComponentName


def test_explicit_intent():
    intent = Intent(component=ComponentName("com.a", ".Main"))
    assert intent.is_explicit
    assert intent.is_empty
    assert "com.a/com.a.Main" in str(intent)


def test_empty_means_no_extras():
    intent = Intent(action="a.b.C")
    assert intent.is_empty
    intent.put_extra("k", "v")
    assert not intent.is_empty
    assert "k" in str(intent)


def test_put_extra_chains():
    intent = Intent().put_extra("a", "1").put_extra("b", "2")
    assert intent.extras == {"a": "1", "b": "2"}


def test_forced_start_carries_empty_intent(device, adb, demo_apk):
    from repro.adb import instrument_manifest

    adb.install(instrument_manifest(demo_apk))
    adb.am_force_start("com.example.demo/.SecondActivity")
    activity = device.foreground.top_activity
    assert activity.intent.is_empty


def test_click_navigation_carries_origin_extra(launched):
    launched.click_widget("btn_next")
    activity = launched.foreground.top_activity
    assert activity.intent.extras["origin"] == \
        "com.example.demo.MainActivity"


def test_aftm_predecessors():
    from repro.static.aftm import AFTM, activity_node, fragment_node

    model = AFTM("com.p", entry=activity_node("com.p.A0"))
    model.add_transition(activity_node("com.p.A0"),
                         fragment_node("com.p.F0"), host="com.p.A0")
    model.add_transition(activity_node("com.p.A0"),
                         activity_node("com.p.A1"))
    preds = model.predecessors(fragment_node("com.p.F0"))
    assert len(preds) == 1 and preds[0].src == activity_node("com.p.A0")
    assert model.node("A1") == activity_node("com.p.A1")
    assert model.node("com.p.A1") is not None
    assert model.node("Nope") is None


def test_solo_click_on_screen_coordinates(launched):
    from repro.robotium import Solo

    solo = Solo(launched)
    target = solo.get_view("btn_next")
    solo.click_on_screen(*target.bounds.center)
    assert solo.wait_for_activity("SecondActivity")


def test_logcat_dump_and_len(launched):
    assert len(launched.logcat) > 0
    assert "PackageManager" in launched.logcat.dump()
    launched.logcat.clear()
    assert len(launched.logcat) == 0


def test_api_monitor_clear(launched):
    assert len(launched.api_monitor) > 0
    launched.api_monitor.clear()
    assert len(launched.api_monitor) == 0
    assert launched.api_monitor.apis_seen() == set()