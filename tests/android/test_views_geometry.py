"""View geometry: layout, hit testing, synthetic IDs."""

from repro.android.views import (
    DRAWER_WIDTH,
    ROW_HEIGHT,
    SCREEN_WIDTH,
    Rect,
    RuntimeWidget,
    dialog_bounds,
    layout_content,
    layout_dialog,
    layout_drawer,
    synthetic_id,
    widget_at,
)
from repro.types import WidgetKind


def make_widgets(n):
    return [
        RuntimeWidget(widget_id=f"w{i}", kind=WidgetKind.BUTTON, text="",
                      owner_class="com.a.Main", owner_is_fragment=False)
        for i in range(n)
    ]


def test_rect_contains_and_center():
    rect = Rect(10, 20, 110, 120)
    assert rect.contains(10, 20)
    assert rect.contains(109, 119)
    assert not rect.contains(110, 120)
    assert rect.center == (60, 70)


def test_content_layout_stacks_vertically():
    widgets = make_widgets(4)
    layout_content(widgets)
    tops = [w.bounds.top for w in widgets]
    assert tops == sorted(tops)
    assert all(w.bounds.right == SCREEN_WIDTH for w in widgets)
    assert widgets[1].bounds.top - widgets[0].bounds.top == ROW_HEIGHT


def test_widgets_do_not_overlap():
    widgets = make_widgets(6)
    layout_content(widgets)
    for first, second in zip(widgets, widgets[1:]):
        assert first.bounds.bottom <= second.bounds.top


def test_drawer_layout_is_narrow():
    widgets = make_widgets(3)
    layout_drawer(widgets)
    assert all(w.bounds.right == DRAWER_WIDTH for w in widgets)


def test_dialog_layout_inside_window():
    widgets = make_widgets(2)
    layout_dialog(widgets)
    window = dialog_bounds(2)
    for widget in widgets:
        assert window.contains(widget.bounds.left, widget.bounds.top)


def test_widget_at_topmost_wins():
    widgets = make_widgets(2)
    layout_content(widgets)
    # Overlay the second widget exactly on the first.
    widgets[1].bounds = widgets[0].bounds
    hit = widget_at(widgets, *widgets[0].bounds.center)
    assert hit is widgets[1]


def test_widget_at_misses_blank_space():
    widgets = make_widgets(1)
    layout_content(widgets)
    assert widget_at(widgets, 5, 1900) is None


def test_synthetic_ids_deterministic_and_marked():
    first = synthetic_id("com.a.RawFragment", "row_0")
    second = synthetic_id("com.a.RawFragment", "row_0")
    other = synthetic_id("com.a.RawFragment", "row_1")
    assert first == second
    assert first != other
    assert first.startswith("anon:")
