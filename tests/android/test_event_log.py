"""The device input-event log (the getevent analogue)."""

from repro.android.events import EventLog, InputEvent


def test_every_input_kind_recorded(launched):
    launched.enter_text("password", "abc")
    launched.tap(1070, 1910)  # blank space
    launched.press_back()
    kinds = [e.kind for e in launched.event_log.events]
    assert kinds[0] == "start"
    assert "tap" in kinds
    assert "text" in kinds
    assert "back" in kinds


def test_click_widget_recorded_as_tap(launched):
    before = len(launched.event_log)
    launched.click_widget("btn_next")
    taps = launched.event_log.events[before:]
    assert len(taps) == 1 and taps[0].kind == "tap"


def test_steps_monotonic_in_log(launched):
    launched.swipe_from_left()
    launched.press_back()
    steps = [e.step for e in launched.event_log.events]
    assert steps == sorted(steps)


def test_filtering_and_dump(launched):
    launched.swipe_from_left()
    assert launched.event_log.of_kind("swipe")
    assert launched.event_log.since(0) == launched.event_log.events
    assert "swipe" in launched.event_log.dump()


def test_event_rendering():
    assert "tap (3,4)" in str(InputEvent(step=1, kind="tap", x=3, y=4))
    assert "text field='x'" in str(
        InputEvent(step=2, kind="text", target="field", text="x")
    )


def test_monkey_leaves_full_event_trail():
    from repro.android import Device
    from repro.apk import build_apk
    from repro.baselines import Monkey
    from tests.conftest import make_full_demo_spec

    device = Device()
    Monkey(device, seed=9).run(build_apk(make_full_demo_spec()),
                               event_count=60)
    # Every injected event is visible in the log (starts + inputs).
    assert len(device.event_log) >= 60
