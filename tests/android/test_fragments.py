"""Fragment lifecycle and FragmentManager semantics."""

import pytest

from repro.android.fragment_manager import FragmentTransaction
from repro.errors import DeviceError


def top_activity(device):
    return device.foreground.top_activity


def test_replace_swaps_container_content(launched):
    launched.click_widget("btn_tab")
    launched.click_widget("btn_tab")  # idempotent replace
    assert launched.current_fragment_classes() == [
        "com.example.demo.NewsFragment"
    ]


def test_manager_records_managed_fragments(launched):
    manager = top_activity(launched).fragment_manager
    fragments = manager.fragments()
    assert [f.spec.name for f in fragments] == ["HomeFragment"]
    assert manager.find_by_class("com.example.demo.HomeFragment") is not None
    assert manager.find_by_class("com.example.demo.Ghost") is None


def test_transaction_add_stacks_fragments(launched):
    activity = top_activity(launched)
    app = launched.foreground
    app.attach_fragment(activity, "NewsFragment", "fragment_container",
                        mode="add", via="transaction")
    names = [f.spec.name for f in activity.fragment_manager.fragments()]
    assert names == ["HomeFragment", "NewsFragment"]


def test_transaction_commit_once(launched):
    manager = top_activity(launched).fragment_manager
    transaction = manager.begin_transaction()
    transaction.commit()
    with pytest.raises(DeviceError):
        transaction.commit()


def test_transaction_remove(launched):
    activity = top_activity(launched)
    manager = activity.fragment_manager
    fragment = manager.fragments()[0]
    manager.begin_transaction().remove(fragment).commit()
    assert manager.fragments() == []


def test_unmanaged_fragment_not_in_manager(launched):
    launched.click_widget("btn_next")
    launched.click_widget("btn_raw")
    activity = top_activity(launched)
    assert activity.fragment_manager.fragments() == []
    assert [f.spec.name for f in activity.direct_fragments] == ["RawFragment"]


def test_unmanaged_widgets_synthetic_and_stable(launched):
    launched.click_widget("btn_next")
    launched.click_widget("btn_raw")
    first = [w.widget_id for w in launched.ui_dump()
             if w.owner_is_fragment]
    launched.click_widget("btn_raw")  # re-attach replaces, ids stable
    second = [w.widget_id for w in launched.ui_dump()
              if w.owner_is_fragment]
    assert first == second
    assert all(i.startswith("anon:") for i in first)


def test_fragment_api_calls_fire_on_attach(launched):
    apis = launched.api_monitor.apis_seen()
    assert "phone/getDeviceId" in apis       # activity onCreate
    assert "internet/connect" not in apis    # NewsFragment not attached yet
    launched.click_widget("btn_tab")
    assert "internet/connect" in launched.api_monitor.apis_seen()


def test_fragment_widgets_carry_resource_ids(launched):
    widget = next(w for w in launched.ui_dump()
                  if w.widget_id == "home_list")
    assert widget.owner_is_fragment
    assert widget.resource_value is not None
