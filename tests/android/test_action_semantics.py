"""Action execution semantics not covered elsewhere."""

import pytest

from repro.apk import (
    ActivitySpec,
    AppSpec,
    Chain,
    FinishActivity,
    FragmentSpec,
    InvokeApi,
    Noop,
    StartActivity,
    StartActivityByAction,
    ToggleWidget,
    WidgetSpec,
    build_apk,
)
from repro.types import WidgetKind


def install_and_launch(device, adb, spec):
    adb.install(build_apk(spec))
    adb.am_start_launcher(spec.package)


def test_toggle_widget_action(device, adb):
    spec = AppSpec(
        package="com.act.toggle",
        activities=[ActivitySpec(
            name="MainActivity", launcher=True,
            widgets=[
                WidgetSpec(id="the_switch", kind=WidgetKind.SWITCH),
                WidgetSpec(id="btn_flip", text="flip",
                           on_click=ToggleWidget("the_switch")),
            ],
        )],
    )
    install_and_launch(device, adb, spec)
    device.click_widget("btn_flip")
    switch = next(w for w in device.ui_dump()
                  if w.widget_id == "the_switch")
    assert switch.checked
    device.click_widget("btn_flip")
    switch = next(w for w in device.ui_dump()
                  if w.widget_id == "the_switch")
    assert not switch.checked


def test_unresolvable_action_is_nonfatal(device, adb):
    spec = AppSpec(
        package="com.act.badaction",
        activities=[ActivitySpec(
            name="MainActivity", launcher=True,
            widgets=[WidgetSpec(
                id="btn_go",
                on_click=StartActivityByAction("com.external.MISSING"),
            )],
        )],
    )
    install_and_launch(device, adb, spec)
    device.click_widget("btn_go")
    assert device.current_activity_name() == "com.act.badaction.MainActivity"
    warnings = device.logcat.entries(level="W", tag="ActivityManager")
    assert any("MISSING" in w.message for w in warnings)


def test_finish_from_fragment_pops_activity(device, adb):
    spec = AppSpec(
        package="com.act.finish",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="btn_next",
                           on_click=StartActivity("SecondActivity")),
            ]),
            ActivitySpec(name="SecondActivity",
                         initial_fragment="CloserFragment"),
        ],
        fragments=[FragmentSpec(
            name="CloserFragment",
            widgets=[WidgetSpec(id="btn_close", text="close",
                                on_click=FinishActivity())],
        )],
    )
    install_and_launch(device, adb, spec)
    device.click_widget("btn_next")
    assert device.current_activity_name() == "com.act.finish.SecondActivity"
    device.click_widget("btn_close")
    assert device.current_activity_name() == "com.act.finish.MainActivity"


def test_chain_runs_in_order(device, adb):
    spec = AppSpec(
        package="com.act.chain",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(
                    id="btn_all",
                    on_click=Chain(actions=(
                        Noop(),
                        InvokeApi("ipc/Binder"),
                        InvokeApi("shell/loadLibrary"),
                        StartActivity("EndActivity"),
                    )),
                ),
            ]),
            ActivitySpec(name="EndActivity"),
        ],
    )
    install_and_launch(device, adb, spec)
    device.click_widget("btn_all")
    apis = [i.api for i in device.api_monitor.invocations]
    assert apis == ["ipc/Binder", "shell/loadLibrary"]
    assert device.current_activity_name() == "com.act.chain.EndActivity"


def test_every_catalog_api_compiles_and_decompiles():
    from repro.smali.apktool import Apktool
    from repro.smali.javagen import JavaDecompiler
    from repro.static.sensitive import SENSITIVE_API_CATALOG

    spec = AppSpec(
        package="com.act.allapis",
        activities=[ActivitySpec(
            name="MainActivity", launcher=True,
            api_calls=[api.name for api in SENSITIVE_API_CATALOG],
        )],
    )
    decoded = Apktool().decode(build_apk(spec))
    cls = decoded.class_by_name("com.act.allapis.MainActivity")
    java = JavaDecompiler().decompile_class(cls)
    for api in SENSITIVE_API_CATALOG:
        assert api.method.name in java, api.name


def test_all_catalog_apis_fire_at_runtime(device, adb):
    from repro.static.sensitive import SENSITIVE_API_CATALOG

    spec = AppSpec(
        package="com.act.allapis2",
        activities=[ActivitySpec(
            name="MainActivity", launcher=True,
            api_calls=[api.name for api in SENSITIVE_API_CATALOG],
        )],
    )
    install_and_launch(device, adb, spec)
    assert device.api_monitor.apis_seen() == {
        api.name for api in SENSITIVE_API_CATALOG
    }