"""Dialogs, popup menus, drawers: modality and dismissal rules."""

def drawer_open(device):
    return any(w.layer == "drawer" for w in device.ui_dump())


def overlay_open(device):
    return any(w.layer in ("dialog", "popup") for w in device.ui_dump())


def test_drawer_hidden_then_opened_by_toggle(launched):
    assert not drawer_open(launched)
    launched.click_widget("drawer_toggle")
    assert drawer_open(launched)
    ids = [w.widget_id for w in launched.ui_dump()]
    assert ids == ["nav_settings"]


def test_drawer_opened_by_swipe(launched):
    launched.swipe_from_left()
    assert drawer_open(launched)


def test_drawer_item_click_navigates_and_closes(launched):
    launched.click_widget("drawer_toggle")
    launched.click_widget("nav_settings")
    assert launched.current_activity_name() == \
        "com.example.demo.SettingsActivity"
    launched.press_back()
    assert not drawer_open(launched)


def test_back_closes_drawer_before_popping(launched):
    launched.swipe_from_left()
    launched.press_back()
    assert not drawer_open(launched)
    assert launched.current_activity_name() == "com.example.demo.MainActivity"


def test_blank_tap_closes_drawer(launched):
    launched.swipe_from_left()
    launched.tap(1000, 1800)  # outside the drawer column
    assert not drawer_open(launched)


def test_popup_menu_is_modal(launched):
    launched.click_widget("btn_menu")
    assert overlay_open(launched)
    ids = [w.widget_id for w in launched.ui_dump()]
    assert len(ids) == 1  # only the menu item visible


def test_popup_blank_space_dismisses(launched):
    launched.click_widget("btn_menu")
    launched.tap(1040, 1900)
    assert not overlay_open(launched)


def test_back_dismisses_popup(launched):
    launched.click_widget("btn_menu")
    launched.press_back()
    assert not overlay_open(launched)
    assert launched.current_activity_name() == "com.example.demo.MainActivity"


def test_popup_item_click_acts_and_closes(launched):
    launched.click_widget("btn_menu")
    item = next(w for w in launched.ui_dump())
    launched.tap(*item.bounds.center)
    # menu_hidden targets HiddenActivity which requires extras; in-app
    # starts carry extras, so it is reached.
    assert launched.current_activity_name() == "com.example.demo.HiddenActivity"


def test_dialog_from_failed_login_blocks_content(launched):
    launched.click_widget("btn_login")  # empty password -> dialog
    assert overlay_open(launched)
    ids = [w.widget_id for w in launched.ui_dump()]
    assert "btn_next" not in ids


def test_overlay_widgets_have_synthetic_ids(launched):
    launched.click_widget("btn_menu")
    for widget in launched.ui_dump():
        assert widget.widget_id.startswith("anon:")
        assert widget.resource_value is None
