"""Crashes (FC), the API monitor, logcat, and reflection switching."""

import pytest

from repro.android import reflective_fragment_switch
from repro.errors import ReflectionError
from repro.types import InvocationSource


# -- crashes ---------------------------------------------------------------

def test_crash_force_closes_app(launched):
    launched.click_widget("btn_next")
    launched.click_widget("btn_crash")
    assert not launched.app_alive
    assert launched.crash_count == 1
    assert launched.logcat.crashes()


def test_app_relaunches_after_crash(launched):
    launched.click_widget("btn_next")
    launched.click_widget("btn_crash")
    assert launched.launch_app("com.example.demo")
    assert launched.current_activity_name() == "com.example.demo.MainActivity"


def test_crash_on_launch(device, adb):
    from repro.apk import ActivitySpec, AppSpec, build_apk

    spec = AppSpec(
        package="com.crashy",
        activities=[ActivitySpec(name="MainActivity", launcher=True,
                                 crashes_on_launch=True)],
    )
    adb.install(build_apk(spec))
    assert not adb.am_start_launcher("com.crashy")
    assert device.crash_count == 1


# -- forced starts and intent extras ---------------------------------------------

def test_forced_start_without_extras_bounces(launched):
    from repro.adb import Adb, instrument_manifest
    # Reinstall instrumented so VaultActivity is force-startable at all.
    adb = Adb(launched)
    apk = launched._installed["com.example.demo"].apk
    adb.install(instrument_manifest(apk))
    assert not adb.am_force_start("com.example.demo/.VaultActivity")
    # In-app navigation (with extras) works:
    adb.am_start_launcher("com.example.demo")
    launched.enter_text("password", "hunter2")
    launched.click_widget("btn_login")
    assert launched.current_activity_name() == "com.example.demo.VaultActivity"


# -- API monitor --------------------------------------------------------------------

def test_monitor_attributes_sources(launched):
    launched.click_widget("home_list")  # fragment API call
    sources = {(i.api, i.source) for i in launched.api_monitor.invocations}
    assert ("phone/getDeviceId", InvocationSource.ACTIVITY) in sources
    assert ("location/getAllProviders", InvocationSource.FRAGMENT) in sources


def test_monitor_distinct_and_by_api(launched):
    launched.click_widget("home_list")
    by_api = launched.api_monitor.by_api()
    assert "location/getAllProviders" in by_api
    assert len(launched.api_monitor.distinct()) <= len(
        launched.api_monitor.invocations
    )


def test_monitor_category_property(launched):
    invocation = launched.api_monitor.invocations[0]
    assert invocation.category == invocation.api.split("/")[0]


# -- logcat ------------------------------------------------------------------------------

def test_logcat_records_installs(launched):
    entries = launched.logcat.entries(tag="PackageManager")
    assert entries
    assert "installed" in entries[0].message


def test_logcat_filtering(launched):
    assert launched.logcat.entries(level="E") == []
    launched.logcat.log("E", "Custom", "boom", 1)
    assert len(launched.logcat.entries(level="E", tag="Custom")) == 1


# -- reflection ---------------------------------------------------------------------------

def test_reflective_switch_attaches_fragment(launched):
    instance = reflective_fragment_switch(
        launched, "com.example.demo.NewsFragment"
    )
    assert instance.via == "reflection"
    assert launched.current_fragment_classes() == [
        "com.example.demo.NewsFragment"
    ]


def test_reflection_fails_without_foreground(device):
    with pytest.raises(ReflectionError):
        reflective_fragment_switch(device, "com.example.demo.NewsFragment")


def test_reflection_fails_on_unknown_class(launched):
    with pytest.raises(ReflectionError):
        reflective_fragment_switch(launched, "com.example.demo.Ghost")


def test_reflection_fails_on_unmanaged_fragment(launched):
    with pytest.raises(ReflectionError, match="FragmentManager"):
        reflective_fragment_switch(launched, "com.example.demo.RawFragment")


def test_reflection_fails_on_args_fragment(launched):
    with pytest.raises(ReflectionError, match="parameters"):
        reflective_fragment_switch(launched, "com.example.demo.ArgsFragment")


def test_reflection_fails_without_container(device, adb):
    from repro.apk import ActivitySpec, AppSpec, FragmentSpec, build_apk

    spec = AppSpec(
        package="com.nocontainer",
        activities=[ActivitySpec(name="MainActivity", launcher=True)],
        fragments=[FragmentSpec(name="LooseFragment")],
    )
    adb.install(build_apk(spec))
    adb.am_start_launcher("com.nocontainer")
    with pytest.raises(ReflectionError, match="container"):
        reflective_fragment_switch(device, "com.nocontainer.LooseFragment")
