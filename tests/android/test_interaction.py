"""Click dispatch, navigation, text entry, back semantics."""

import pytest

from repro.errors import WidgetNotFoundError


def test_click_starts_activity(launched):
    launched.click_widget("btn_next")
    assert launched.current_activity_name() == "com.example.demo.SecondActivity"


def test_back_pops_activity(launched):
    launched.click_widget("btn_next")
    launched.press_back()
    assert launched.current_activity_name() == "com.example.demo.MainActivity"


def test_back_at_root_exits_app(launched):
    launched.press_back()
    assert not launched.app_alive


def test_click_unknown_widget_raises(launched):
    with pytest.raises(WidgetNotFoundError):
        launched.click_widget("no_such_widget")


def test_tab_click_replaces_fragment(launched):
    launched.click_widget("btn_tab")
    assert launched.current_fragment_classes() == [
        "com.example.demo.NewsFragment"
    ]


def test_fragment_widget_click_switches_fragment(launched):
    # home_list chains an API call then shows DetailFragment (E3-style).
    launched.click_widget("home_list")
    assert launched.current_fragment_classes() == [
        "com.example.demo.DetailFragment"
    ]


def test_implicit_intent_navigation(launched):
    launched.click_widget("btn_about")
    assert launched.current_activity_name() == "com.example.demo.AboutActivity"


def test_enter_text_sets_value(launched):
    launched.enter_text("password", "hunter2")
    widget = next(w for w in launched.ui_dump()
                  if w.widget_id == "password")
    assert widget.entered_text == "hunter2"


def test_enter_text_requires_edittext(launched):
    with pytest.raises(WidgetNotFoundError):
        launched.enter_text("btn_next", "x")


def test_login_gate_wrong_value_shows_dialog(launched):
    launched.enter_text("password", "wrong")
    launched.click_widget("btn_login")
    assert launched.current_activity_name() == "com.example.demo.MainActivity"
    layers = {w.layer for w in launched.ui_dump()}
    assert layers == {"dialog"}


def test_login_gate_correct_value_navigates(launched):
    launched.enter_text("password", "hunter2")
    launched.click_widget("btn_login")
    assert launched.current_activity_name() == "com.example.demo.VaultActivity"


def test_tap_on_blank_space_is_noop(launched):
    before = launched.current_activity_name()
    launched.tap(1070, 1910)
    assert launched.current_activity_name() == before


def test_checkbox_toggles_without_handler(device, adb):
    from repro.apk import ActivitySpec, AppSpec, WidgetSpec, build_apk
    from repro.types import WidgetKind

    spec = AppSpec(
        package="com.toggle",
        activities=[ActivitySpec(
            name="MainActivity", launcher=True,
            widgets=[WidgetSpec(id="chk", kind=WidgetKind.CHECK_BOX)],
        )],
    )
    adb.install(build_apk(spec))
    adb.am_start_launcher("com.toggle")
    device.click_widget("chk")
    widget = next(w for w in device.ui_dump() if w.widget_id == "chk")
    assert widget.checked
