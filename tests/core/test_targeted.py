"""The targeted (SmartDroid-style) driving mode."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.targeted import (
    components_invoking,
    drive_to_api,
    drive_to_component,
    path_to_component,
)
from repro.errors import ExplorationError
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def explored():
    apk = build_apk(make_full_demo_spec())
    result = FragDroid(Device()).explore(apk)
    return result, apk


def test_paths_recorded_for_visited_components(explored):
    result, _ = explored
    for activity in result.visited_activities:
        assert activity in result.paths
    for fragment in result.visited_fragments:
        assert fragment in result.paths


def test_path_to_unvisited_component_raises(explored):
    result, _ = explored
    with pytest.raises(ExplorationError):
        path_to_component(result, "com.example.demo.VaultActivity")


def test_components_invoking(explored):
    result, _ = explored
    assert components_invoking(result, "internet/connect") == [
        "com.example.demo.NewsFragment"
    ]
    assert components_invoking(result, "made/up") == []


def test_drive_to_activity(explored):
    result, apk = explored
    device = Device()
    case = drive_to_component(result, apk, device,
                              "com.example.demo.SettingsActivity")
    assert device.current_activity_name() == \
        "com.example.demo.SettingsActivity"
    assert "solo" in case.to_robotium_java()


def test_drive_to_fragment(explored):
    result, apk = explored
    device = Device()
    drive_to_component(result, apk, device,
                       "com.example.demo.NewsFragment")
    assert device.current_fragment_classes() == [
        "com.example.demo.NewsFragment"
    ]


def test_drive_to_api_fires_the_call(explored):
    result, apk = explored
    device = Device()
    case, component = drive_to_api(result, apk, device,
                                   "location/getAllProviders")
    assert component == "com.example.demo.HomeFragment"
    assert any(i.api == "location/getAllProviders"
               for i in device.api_monitor.invocations)


def test_drive_to_unobserved_api_raises(explored):
    result, apk = explored
    with pytest.raises(ExplorationError):
        drive_to_api(result, apk, Device(), "messages/MmsProvider")