"""Run artifact persistence and the coverage curve."""

import json

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.artifacts import coverage_curve, save_artifacts
from repro.core.report import aftm_from_json
from repro.corpus import demo_aftm_example


@pytest.fixture(scope="module")
def result():
    return FragDroid(Device()).explore(build_apk(demo_aftm_example()))


def test_save_artifacts_layout(result, tmp_path):
    written = save_artifacts(result, tmp_path)
    names = {p.relative_to(tmp_path).as_posix() for p in written}
    assert "report.json" in names
    assert "aftm.json" in names
    assert "aftm.dot" in names
    assert "trace.log" in names
    assert "coverage.txt" in names
    java_files = [n for n in names if n.startswith("testcases/")]
    assert len(java_files) == result.stats.test_cases


def test_saved_report_parses(result, tmp_path):
    save_artifacts(result, tmp_path)
    data = json.loads((tmp_path / "report.json").read_text())
    assert data["package"] == "com.example.aftm"
    restored = aftm_from_json((tmp_path / "aftm.json").read_text())
    assert restored.is_complete()


def test_saved_testcases_are_java(result, tmp_path):
    save_artifacts(result, tmp_path)
    sample = next((tmp_path / "testcases").iterdir())
    text = sample.read_text()
    assert "import com.robotium.solo.Solo;" in text


def test_coverage_curve_monotonic(result):
    curve = coverage_curve(result)
    assert curve[0] == (0, 0, 0)
    steps = [point[0] for point in curve]
    assert steps == sorted(steps)
    activities = [point[1] for point in curve]
    fragments = [point[2] for point in curve]
    assert activities == sorted(activities)
    assert fragments == sorted(fragments)
    assert activities[-1] == len(result.visited_activities)
    assert fragments[-1] == len(result.visited_fragments)
