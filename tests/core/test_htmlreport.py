"""The HTML run report."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.htmlreport import render_html_report
from repro.corpus import demo_aftm_example
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def report():
    result = FragDroid(Device()).explore(build_apk(make_full_demo_spec()))
    return render_html_report(result), result


def test_document_structure(report):
    html_text, _ = report
    assert html_text.startswith("<!DOCTYPE html>")
    assert html_text.count("<table>") == 4
    assert "</html>" in html_text
    assert "<script" not in html_text  # self-contained, no scripts


def test_summary_contains_counts(report):
    html_text, result = report
    assert f"{len(result.visited_activities)} / {result.activity_total}" \
        in html_text
    assert result.package in html_text


def test_components_listed_with_status(report):
    html_text, _ = report
    assert "com.example.demo.VaultActivity" in html_text
    assert "unvisited" in html_text
    assert "visited" in html_text


def test_api_symbols_rendered(report):
    html_text, _ = report
    assert "◗" in html_text or "⊙" in html_text or "●" in html_text


def test_text_is_escaped():
    result = FragDroid(Device()).explore(build_apk(demo_aftm_example()))
    # Inject a hostile-looking trace detail and re-render.
    from repro.core.explorer import TraceEvent

    result.trace.append(TraceEvent(999, "visit", "<script>alert(1)</script>"))
    html_text = render_html_report(result)
    assert "<script>alert(1)</script>" not in html_text
    assert "&lt;script&gt;" in html_text


def test_saved_artifacts_include_html(tmp_path):
    from repro.core.artifacts import save_artifacts

    result = FragDroid(Device()).explore(build_apk(demo_aftm_example()))
    save_artifacts(result, tmp_path)
    html_path = tmp_path / "report.html"
    assert html_path.exists()
    assert "FragDroid exploration report" in html_path.read_text()