"""FragDroidConfig validation: budget rails and fault-profile wiring."""

import pytest

from repro import FragDroidConfig
from repro.faults import FaultPlan, fault_plan

RAILS = ("max_events", "max_queue_items", "max_restarts_per_item",
         "quarantine_threshold")


@pytest.mark.parametrize("rail", RAILS)
@pytest.mark.parametrize("bad", [0, -1, -20000])
def test_non_positive_rails_rejected(rail, bad):
    with pytest.raises(ValueError, match=f"{rail} must be a positive"):
        FragDroidConfig(**{rail: bad})


@pytest.mark.parametrize("rail", RAILS)
@pytest.mark.parametrize("bad", [2.5, "100", None, True])
def test_non_integer_rails_rejected(rail, bad):
    with pytest.raises(ValueError, match=f"{rail} must be a positive"):
        FragDroidConfig(**{rail: bad})


def test_defaults_are_valid_and_fault_free():
    config = FragDroidConfig()
    assert config.fault_plan is None
    assert not config.faults_enabled


def test_named_profile_resolves_to_a_seeded_plan():
    config = FragDroidConfig(fault_profile="hostile", fault_seed=7)
    assert config.faults_enabled
    assert config.fault_plan.profile == "hostile"
    assert config.fault_plan.seed == 7


def test_explicit_plan_wins_over_profile_name():
    plan = FaultPlan(profile="custom", seed=1, anr_rate=0.5)
    config = FragDroidConfig(fault_profile="mild", fault_plan=plan)
    assert config.fault_plan is plan


def test_none_profile_stays_planless():
    config = FragDroidConfig(fault_profile="none", fault_seed=123)
    assert config.fault_plan is None and not config.faults_enabled


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown fault profile"):
        FragDroidConfig(fault_profile="apocalyptic")


def test_disabled_plan_counts_as_fault_free():
    config = FragDroidConfig(fault_plan=fault_plan("none"))
    assert not config.faults_enabled
