"""Crash recovery on the fault-free path: Case 3's force-close
handling, driven through :func:`repro.corpus.mutations.inject_crash`."""

from repro import Device, FragDroid, FragDroidConfig
from repro.corpus.mutations import inject_crash
from tests.conftest import make_full_demo_spec


def _explore(spec, **config_kwargs):
    from repro.apk import build_apk

    config = FragDroidConfig(**config_kwargs) if config_kwargs else None
    return FragDroid(Device(), config).explore(build_apk(spec))


def test_injected_crash_is_counted_and_survived():
    spec = inject_crash(make_full_demo_spec(), "btn_tab")
    result = _explore(spec)
    assert result.stats.crashes >= 1
    # The sweep relaunched and replayed past the crash: the widgets
    # after btn_tab still fired and the rest of the app was covered.
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert {"MainActivity", "SecondActivity", "SettingsActivity",
            "AboutActivity"} <= simple


def test_crash_blocks_only_its_own_edge():
    # btn_next now crashes instead of opening SecondActivity: the
    # dynamic edge is never confirmed (its static edge keeps the
    # "static" trigger), but the forced-start loop still visits the
    # target activity.
    spec = inject_crash(make_full_demo_spec(), "btn_next")
    result = _explore(spec)
    assert result.stats.crashes >= 1
    assert "btn_next" not in {e.trigger for e in result.aftm.edges}
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert "SecondActivity" in simple


def test_restart_budget_caps_crash_loops():
    spec = make_full_demo_spec()
    for widget_id in ("btn_next", "btn_tab", "btn_about"):
        spec = inject_crash(spec, widget_id)
    generous = _explore(spec)
    stingy = _explore(spec, max_restarts_per_item=1)
    assert stingy.stats.crashes >= 1
    assert stingy.stats.crashes < generous.stats.crashes


def test_crash_recovery_is_deterministic():
    from repro.core.report import result_to_json

    spec = inject_crash(make_full_demo_spec(), "btn_tab")
    assert result_to_json(_explore(spec)) == result_to_json(_explore(spec))
