"""The UI transition queue and its operations."""

from repro.core.queue import (
    OpKind,
    Operation,
    UIQueue,
    UIQueueItem,
    click_op,
    force_start_op,
    launch_op,
    reflect_op,
    swipe_op,
    text_op,
)
from repro.static.aftm import activity_node, fragment_node

A0 = activity_node("com.t.A0")
F0 = fragment_node("com.t.F0")


def test_operation_rendering():
    assert str(launch_op()) == "launch"
    assert str(click_op("btn")) == "click(btn)"
    assert str(text_op("field", "x")) == "enterText(field, 'x')"
    assert str(reflect_op("com.t.F")) == "reflect(com.t.F)"


def test_item_extension_appends_operations():
    base = UIQueueItem("launch", None, A0, (launch_op(),))
    extended = base.extended("reflection", F0, reflect_op(F0.name))
    assert extended.start == A0
    assert extended.target == F0
    assert extended.operations == (launch_op(), reflect_op(F0.name))
    # The original item is untouched.
    assert base.operations == (launch_op(),)


def test_queue_fifo_order():
    queue = UIQueue()
    first = UIQueueItem("launch", None, A0, (launch_op(),))
    second = UIQueueItem("click", A0, F0, (launch_op(), click_op("b")))
    queue.push(first)
    queue.push(second)
    assert queue.pop() is first
    assert queue.pop() is second
    assert not queue


def test_duplicate_items_suppressed():
    queue = UIQueue()
    item = UIQueueItem("launch", None, A0, (launch_op(),))
    assert queue.push(item)
    assert not queue.push(UIQueueItem("launch", None, A0, (launch_op(),)))
    assert len(queue) == 1


def test_different_operations_not_duplicates():
    queue = UIQueue()
    queue.push(UIQueueItem("click", None, A0, (click_op("a"),)))
    assert queue.push(UIQueueItem("click", None, A0, (click_op("b"),)))
    assert len(queue) == 2


def test_queue_limit_drops():
    queue = UIQueue(limit=2)
    for index in range(4):
        queue.push(UIQueueItem("click", None, A0, (click_op(f"w{index}"),)))
    assert len(queue) == 2
    assert queue.dropped == 2


def test_item_str():
    item = UIQueueItem("forced-start", None, A0,
                       (force_start_op("com.t/.A0"),))
    text = str(item)
    assert "forced-start" in text and "com.t/.A0" in text
