"""The exploration trace artifact."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.corpus import build_table1_app, demo_aftm_example


@pytest.fixture(scope="module")
def traced():
    return FragDroid(Device()).explore(build_apk(demo_aftm_example()))


def test_trace_records_items_and_visits(traced):
    kinds = {event.kind for event in traced.trace}
    assert "item" in kinds
    assert "visit" in kinds
    visits = [e.detail for e in traced.trace if e.kind == "visit"]
    assert any("A0Activity" in v for v in visits)
    assert any("F1Fragment" in v for v in visits)


def test_trace_records_transitions_with_triggers(traced):
    transitions = [e for e in traced.trace if e.kind == "transition"]
    assert transitions
    assert any("btn_a1" in e.detail for e in transitions)


def test_trace_steps_monotonic(traced):
    steps = [event.step for event in traced.trace]
    assert steps == sorted(steps)


def test_trace_text_renders(traced):
    text = traced.trace_text()
    assert text.count("\n") + 1 == len(traced.trace)
    assert "visit" in text


def test_reflection_failures_traced():
    result = FragDroid(Device()).explore(
        build_apk(build_table1_app("com.inditex.zara"))
    )
    failures = [e for e in result.trace if e.kind == "reflection-failure"]
    assert len(failures) == result.stats.reflection_failures
    assert any("parameters" in e.detail for e in failures)
