"""Small unit behaviours not covered elsewhere."""

from repro.core.queue import UIQueue, UIQueueItem, click_op, launch_op
from repro.core.ui_driver import UiSnapshot
from repro.static.aftm import activity_node


def item(widget: str) -> UIQueueItem:
    return UIQueueItem("click", None, activity_node("com.u.A"),
                       (launch_op(), click_op(widget)))


def test_queue_push_all_counts_new_items():
    queue = UIQueue()
    added = queue.push_all([item("a"), item("b"), item("a")])
    assert added == 2
    assert len(queue) == 2


def test_depth_order_pops_newest_first():
    queue = UIQueue(order="depth")
    queue.push(item("first"))
    queue.push(item("second"))
    assert queue.pop().operations[-1].target == "second"


def test_snapshot_signature_semantics():
    base = dict(activity="com.u.A", fragments=frozenset({"com.u.F"}),
                widget_ids=("a", "b"), overlay=None, drawer_open=False)
    first = UiSnapshot(**base)
    same_widgets_reordered = UiSnapshot(**{**base, "widget_ids": ("b", "a")})
    # Widget *set* identity, not order: restarts may rebuild in any order.
    assert first.signature == same_widgets_reordered.signature
    with_overlay = UiSnapshot(**{**base, "overlay": "dialog"})
    assert first.signature != with_overlay.signature
    different_fragment = UiSnapshot(**{**base, "fragments": frozenset()})
    assert first.signature != different_fragment.signature


def test_snapshot_dead_is_not_alive():
    dead = UiSnapshot(activity=None, fragments=frozenset(), widget_ids=(),
                      overlay=None, drawer_open=False)
    assert not dead.alive


def test_coverage_curve_no_visits():
    from repro.core.artifacts import coverage_curve
    from repro.core.explorer import ExplorationResult, ExplorationStats

    empty = ExplorationResult(
        package="com.u", info=None, aftm=None,  # type: ignore[arg-type]
        visited_activities=set(), visited_fragments=set(),
        api_invocations=[], test_cases=[], stats=ExplorationStats(),
    )
    assert coverage_curve(empty) == [(0, 0, 0)]