"""Coverage rows/report (Table I shape) and the Table II report."""

import pytest

from repro.core.coverage import CoverageReport, CoverageRow
from repro.core.sensitive_analysis import (
    ApiRelation,
    SensitiveApiReport,
    relations_from_invocations,
)
from repro.types import ApiInvocation, ComponentName, InvocationSource


def row(package="com.a", av=2, asum=4, fv=1, fsum=2, fivav=1, fivas=1,
        downloads="1,000+"):
    return CoverageRow(package, downloads, av, asum, fv, fsum, fivav, fivas)


def test_row_rates():
    r = row()
    assert r.activity_rate == 0.5
    assert r.fragment_rate == 0.5
    assert r.fiva_rate == 1.0


def test_row_zero_denominator():
    r = row(fv=0, fsum=0, fivav=0, fivas=0)
    assert r.fragment_rate is None
    assert r.fiva_rate is None


def test_report_means_skip_undefined():
    report = CoverageReport([row(), row(package="com.b", fv=0, fsum=0,
                                        fivav=0, fivas=0)])
    assert report.mean_fragment_rate == 0.5  # only com.a counts
    assert report.mean_activity_rate == 0.5


def test_report_overall_pooled_rates():
    report = CoverageReport([
        row(av=1, asum=2), row(package="com.b", av=3, asum=4),
    ])
    assert report.overall_activity_rate == 4 / 6


def test_full_fiva_apps_counted():
    report = CoverageReport([row(), row(package="com.b", fivav=0, fivas=2)])
    assert report.full_fiva_apps() == 1


def test_render_contains_rows_and_mean():
    report = CoverageReport([row()])
    text = report.render()
    assert "com.a" in text and "MEAN" in text and "50.00%" in text


# -- Table II report -------------------------------------------------------------

def inv(api, cls, source):
    return ApiInvocation(api, ComponentName("com.a", f"com.a.{cls}"), source)


def test_relations_fold_sources():
    invocations = [
        inv("phone/getDeviceId", "Main", InvocationSource.ACTIVITY),
        inv("phone/getDeviceId", "Home", InvocationSource.FRAGMENT),
        inv("internet/connect", "Home", InvocationSource.FRAGMENT),
        inv("storage/sdcard", "Main", InvocationSource.ACTIVITY),
        inv("storage/sdcard", "Main", InvocationSource.ACTIVITY),  # dup
    ]
    relations = relations_from_invocations("com.a", invocations)
    by_api = {r.api: r for r in relations}
    assert by_api["phone/getDeviceId"].symbol == "⊙"
    assert by_api["internet/connect"].symbol == "◗"
    assert by_api["storage/sdcard"].symbol == "●"
    assert len(relations) == 3


def test_non_catalog_apis_ignored():
    relations = relations_from_invocations(
        "com.a", [inv("made/up", "Main", InvocationSource.ACTIVITY)]
    )
    assert relations == []


def test_report_aggregates():
    report = SensitiveApiReport(relations=[
        ApiRelation("com.a", "phone/getDeviceId", True, True),
        ApiRelation("com.a", "internet/connect", False, True),
        ApiRelation("com.b", "storage/sdcard", True, False),
        ApiRelation("com.b", "ipc/Binder", True, False),
    ])
    assert report.total_relations == 4
    assert report.distinct_apis_found == 4
    assert report.fragment_associated_share == 0.5
    assert report.fragment_only_share == 0.25
    assert report.packages == ["com.a", "com.b"]


def test_report_render_matrix():
    report = SensitiveApiReport(relations=[
        ApiRelation("com.a", "phone/getDeviceId", True, True),
    ])
    text = report.render()
    assert "phone/getDeviceId" in text
    assert "⊙" in text
    assert "fragment-associated" in text


def test_empty_report():
    report = SensitiveApiReport()
    assert report.fragment_associated_share == 0.0
    assert report.fragment_only_share == 0.0
