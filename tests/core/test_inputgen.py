"""Input rules (repro.apk.inputs) and the heuristic generator."""

import pytest

from repro.android.views import RuntimeWidget
from repro.apk.inputs import KNOWN_CITIES, validate
from repro.core.inputgen import HeuristicInputGenerator
from repro.static.input_dep import DEFAULT_TEXT, InputDependency
from repro.types import WidgetKind


# -- validators ----------------------------------------------------------------

@pytest.mark.parametrize(
    "rule,good,bad",
    [
        ("nonempty", "x", "   "),
        ("city", "Boston", "abc"),
        ("email", "a.b+c@example.org", "not-an-email"),
        ("numeric", "123", "12a"),
        ("date", "2018-06-25", "25/06/2018"),
        ("phone", "+8613800000000", "call-me"),
        ("url", "https://example.com/x", "example"),
    ],
)
def test_validators(rule, good, bad):
    assert validate(rule, good)
    assert not validate(rule, bad)


def test_unknown_rule_rejected():
    with pytest.raises(KeyError):
        validate("favourite-colour", "blue")


def test_default_filler_fails_every_rule():
    for rule in ("city", "email", "numeric", "date", "phone", "url"):
        assert not validate(rule, DEFAULT_TEXT)


# -- heuristic generator ----------------------------------------------------------

def widget(widget_id, text=""):
    return RuntimeWidget(
        widget_id=widget_id, kind=WidgetKind.EDIT_TEXT, text=text,
        owner_class="com.a.Main", owner_is_fragment=False,
    )


@pytest.mark.parametrize(
    "widget_id,rule",
    [
        ("email_field", "email"),
        ("city_input_00", "city"),
        ("phone_number", "phone"),
        ("birth_date", "date"),
        ("website_url", "url"),
        ("zip_code", "numeric"),
    ],
)
def test_generated_values_satisfy_matching_rules(widget_id, rule):
    generator = HeuristicInputGenerator()
    value = generator.value_for(widget(widget_id))
    assert validate(rule, value), (widget_id, value)


def test_generator_uses_label_text_too():
    generator = HeuristicInputGenerator()
    value = generator.value_for(widget("field_1", text="Enter a city"))
    assert value in KNOWN_CITIES


def test_unmatched_context_falls_back_to_default():
    generator = HeuristicInputGenerator()
    assert generator.value_for(widget("xyzzy")) == DEFAULT_TEXT


def test_analyst_values_take_precedence():
    dep = InputDependency(package="com.a")
    dep.provide("city_input_00", "Jinan")
    generator = HeuristicInputGenerator(dep)
    assert generator.value_for(widget("city_input_00")) == "Jinan"


def test_classify():
    assert HeuristicInputGenerator.classify("login_name") == "user"
    assert HeuristicInputGenerator.classify("nothing-here") is None


# -- config validation ----------------------------------------------------------------

def test_config_rejects_unknown_strategy():
    from repro.core.config import FragDroidConfig

    with pytest.raises(ValueError):
        FragDroidConfig(input_strategy="psychic")


# -- SubmitForm rule semantics ----------------------------------------------------------

def test_submit_form_needs_constraints():
    from repro.apk.appspec import SubmitForm
    from repro.errors import ApkError

    with pytest.raises(ApkError):
        SubmitForm()


def test_rule_gated_form_end_to_end(device, adb):
    from repro.apk import (ActivitySpec, AppSpec, ShowDialog, StartActivity,
                           SubmitForm, WidgetSpec, build_apk)
    from repro.types import WidgetKind

    spec = AppSpec(
        package="com.rules",
        activities=[
            ActivitySpec(
                name="MainActivity", launcher=True,
                widgets=[
                    WidgetSpec(id="city_input", kind=WidgetKind.EDIT_TEXT),
                    WidgetSpec(
                        id="btn_go", text="Go",
                        on_click=SubmitForm(
                            rules={"city_input": "city"},
                            on_success=StartActivity("ResultActivity"),
                            on_failure=ShowDialog("No such place"),
                        ),
                    ),
                ],
            ),
            ActivitySpec(name="ResultActivity"),
        ],
    )
    adb.install(build_apk(spec))
    adb.am_start_launcher("com.rules")
    device.enter_text("city_input", "abc")
    device.click_widget("btn_go")
    assert device.current_activity_name() == "com.rules.MainActivity"
    device.press_back()  # dismiss the error dialog
    device.enter_text("city_input", "Boston")
    device.click_widget("btn_go")
    assert device.current_activity_name() == "com.rules.ResultActivity"
