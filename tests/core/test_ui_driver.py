"""The UI driver: snapshots, identification, input filling."""

import pytest

from repro.adb import Adb
from repro.core.ui_driver import UiDriver
from repro.robotium import Solo
from repro.static import extract_static_info


@pytest.fixture
def driver(launched, demo_apk):
    info = extract_static_info(demo_apk)
    return UiDriver(Solo(launched), info)


def test_snapshot_identifies_activity_and_fragment(driver):
    snapshot = driver.snapshot()
    assert snapshot.activity == "com.example.demo.MainActivity"
    assert snapshot.fragments == {"com.example.demo.HomeFragment"}
    assert snapshot.alive
    assert snapshot.overlay is None
    assert not snapshot.drawer_open


def test_snapshot_signature_changes_with_fragment(driver, launched):
    before = driver.snapshot().signature
    launched.click_widget("btn_tab")
    after = driver.snapshot().signature
    assert before != after


def test_snapshot_detects_overlay(driver, launched):
    launched.click_widget("btn_menu")
    snapshot = driver.snapshot()
    assert snapshot.overlay == "popup"


def test_snapshot_detects_drawer(driver, launched):
    launched.swipe_from_left()
    assert driver.snapshot().drawer_open


def test_unidentifiable_fragment_absent(driver, launched):
    launched.click_widget("btn_next")
    launched.click_widget("btn_raw")
    snapshot = driver.snapshot()
    # RawFragment is attached (ground truth)...
    assert launched.current_fragment_classes() == [
        "com.example.demo.RawFragment"
    ]
    # ...but the tool cannot see it through the resource dependency.
    assert snapshot.fragments == frozenset()


def test_fill_inputs_uses_analyst_values(launched, demo_apk):
    info = extract_static_info(demo_apk,
                               input_values={"password": "hunter2"})
    driver = UiDriver(Solo(launched), info)
    operations = driver.fill_inputs()
    assert any(op.target == "password" and op.value == "hunter2"
               for op in operations)
    widget = next(w for w in launched.ui_dump()
                  if w.widget_id == "password")
    assert widget.entered_text == "hunter2"


def test_fill_inputs_default_without_file(launched, demo_apk):
    info = extract_static_info(demo_apk)
    driver = UiDriver(Solo(launched), info, use_input_file=False)
    driver.fill_inputs()
    widget = next(w for w in launched.ui_dump()
                  if w.widget_id == "password")
    assert widget.entered_text == "abc"


def test_dismiss_overlay(driver, launched):
    launched.click_widget("btn_menu")
    driver.dismiss_overlay()
    assert driver.snapshot().overlay is None


def test_dead_snapshot(driver, launched):
    launched.force_stop("com.example.demo")
    snapshot = driver.snapshot()
    assert not snapshot.alive
    assert snapshot.activity is None
