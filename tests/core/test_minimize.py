"""Test-suite minimization."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.minimize import minimize_suite
from repro.corpus import build_table1_app
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def explored():
    apk = build_apk(make_full_demo_spec())
    return FragDroid(Device()).explore(apk), apk


def test_minimized_suite_covers_everything(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    universe = set(result.visited_activities) | set(result.visited_fragments)
    assert suite.covered == universe


def test_minimization_actually_reduces(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    assert len(suite.cases) < suite.original_size
    assert suite.reduction > 0
    assert "fewer" in suite.render()


def test_minimized_cases_are_passing_cases(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    originals = {case.name for case in result.passing_test_cases}
    assert all(case.name in originals for case in suite.cases)


def test_minimize_on_corpus_app():
    apk = build_apk(build_table1_app("org.rbc.odb"))
    result = FragDroid(Device()).explore(apk)
    suite = minimize_suite(result, apk)
    universe = set(result.visited_activities) | set(result.visited_fragments)
    assert suite.covered == universe
    assert len(suite.cases) <= suite.original_size

def test_truncated_probe_is_counted_not_swallowed():
    """The satellite bug: a probe that breaks mid-replay must flag the
    truncation instead of silently under-counting coverage."""
    from types import SimpleNamespace

    from repro.core.minimize import _coverage_of_case
    from repro.core.queue import click_op, launch_op
    from repro.core.testcase import TestCase
    from repro.obs import Tracer

    apk = build_apk(make_full_demo_spec())
    package = apk.package
    good = TestCase(package, "Good", (launch_op(), click_op("btn_next")))
    broken = TestCase(package, "Broken",
                      (launch_op(), click_op("no_such_widget")))
    universe = {f"{package}.MainActivity", f"{package}.SecondActivity"}

    covered, truncated = _coverage_of_case(good, apk, universe)
    assert not truncated
    assert covered == universe

    covered, truncated = _coverage_of_case(broken, apk, universe)
    assert truncated
    # The prefix before the break still counts.
    assert f"{package}.MainActivity" in covered

    tracer = Tracer()
    result = SimpleNamespace(
        visited_activities=sorted(universe), visited_fragments=[],
        passing_test_cases=[good, broken],
    )
    suite = minimize_suite(result, apk, tracer=tracer)
    assert suite.truncated_probes == 1
    assert tracer.metrics.counter("minimize.truncated_probes") == 1
    assert "1 coverage probe truncated" in suite.render()


def test_untruncated_suite_renders_unchanged(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    assert suite.truncated_probes == 0
    assert "truncated" not in suite.render()


def test_greedy_tie_break_picks_lowest_index():
    """Equal-gain candidates must resolve to the lowest case index, not
    dict insertion order."""
    from types import SimpleNamespace

    from repro.core.queue import click_op, launch_op
    from repro.core.testcase import TestCase

    apk = build_apk(make_full_demo_spec())
    package = apk.package
    # Three identical cases: all cover the same two components.
    cases = [
        TestCase(package, f"Twin{i}", (launch_op(), click_op("btn_next")))
        for i in range(3)
    ]
    result = SimpleNamespace(
        visited_activities=[f"{package}.MainActivity",
                            f"{package}.SecondActivity"],
        visited_fragments=[],
        passing_test_cases=cases,
    )
    suite = minimize_suite(result, apk)
    assert [case.name for case in suite.cases] == ["Twin0"]
