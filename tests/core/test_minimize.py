"""Test-suite minimization."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.minimize import minimize_suite
from repro.corpus import build_table1_app
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def explored():
    apk = build_apk(make_full_demo_spec())
    return FragDroid(Device()).explore(apk), apk


def test_minimized_suite_covers_everything(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    universe = set(result.visited_activities) | set(result.visited_fragments)
    assert suite.covered == universe


def test_minimization_actually_reduces(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    assert len(suite.cases) < suite.original_size
    assert suite.reduction > 0
    assert "fewer" in suite.render()


def test_minimized_cases_are_passing_cases(explored):
    result, apk = explored
    suite = minimize_suite(result, apk)
    originals = {case.name for case in result.passing_test_cases}
    assert all(case.name in originals for case in suite.cases)


def test_minimize_on_corpus_app():
    apk = build_apk(build_table1_app("org.rbc.odb"))
    result = FragDroid(Device()).explore(apk)
    suite = minimize_suite(result, apk)
    universe = set(result.visited_activities) | set(result.visited_fragments)
    assert suite.covered == universe
    assert len(suite.cases) <= suite.original_size