"""The FragDroid explorer end-to-end on the reference app."""

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.static.aftm import EdgeKind


@pytest.fixture(scope="module")
def result():
    from repro.apk import build_apk
    from tests.conftest import make_full_demo_spec

    device = Device()
    return FragDroid(device).explore(build_apk(make_full_demo_spec()))


def test_all_reachable_activities_visited(result):
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert {"MainActivity", "SecondActivity", "SettingsActivity",
            "AboutActivity"} <= simple


def test_extras_gated_activities_unvisited(result):
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert "VaultActivity" not in simple   # login secret not provided
    assert "HiddenActivity" not in simple  # popup dismissed, extras needed


def test_managed_fragments_visited(result):
    simple = {f.rsplit(".", 1)[-1] for f in result.visited_fragments}
    assert {"HomeFragment", "NewsFragment", "DetailFragment"} <= simple


def test_obstacle_fragments_unvisited(result):
    simple = {f.rsplit(".", 1)[-1] for f in result.visited_fragments}
    assert "RawFragment" not in simple
    assert "ArgsFragment" not in simple


def test_reflection_failures_counted(result):
    # ArgsFragment (needs args) and RawFragment (no manager) both fail.
    assert result.stats.reflection_failures >= 2


def test_dynamic_edges_recorded_with_triggers(result):
    triggers = {e.trigger for e in result.aftm.edges}
    assert "btn_next" in triggers or "btn_tab" in triggers


def test_e3_edge_discovered(result):
    e3 = {(e.src.simple_name, e.dst.simple_name)
          for e in result.aftm.edges_of_kind(EdgeKind.E3)}
    assert ("HomeFragment", "DetailFragment") in e3


def test_api_invocations_attributed(result):
    by_source = {(i.api, i.source.value) for i in result.api_invocations}
    assert ("phone/getDeviceId", "activity") in by_source
    assert ("internet/connect", "fragment") in by_source
    assert ("location/getAllProviders", "fragment") in by_source


def test_test_cases_rendered(result):
    assert result.stats.test_cases == len(result.test_cases)
    assert result.stats.test_cases >= 3
    java = result.test_cases[0].to_robotium_java()
    assert "public class GeneratedTest0000" in java


def test_coverage_report_text(result):
    report = result.coverage_report()
    assert "activities:" in report and "fragments:" in report


def test_rates(result):
    assert 0 < result.activity_rate <= 1
    assert 0 < result.fragment_rate <= 1
    visited, total = result.fragments_in_visited_activities()
    assert visited <= total <= result.fragment_total


# -- configuration ablations -------------------------------------------------------

def explore_with(config):
    from repro.apk import build_apk
    from tests.conftest import make_demo_spec

    return FragDroid(Device(), config).explore(build_apk(make_demo_spec()))


def test_input_file_unlocks_login_gate():
    config = FragDroidConfig(input_values={"password": "hunter2"})
    result = explore_with(config)
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert "VaultActivity" in simple


def test_without_reflection_fragment_coverage_drops():
    base = explore_with(FragDroidConfig())
    no_reflect = explore_with(FragDroidConfig(enable_reflection=False))
    assert len(no_reflect.visited_fragments) <= len(base.visited_fragments)
    assert no_reflect.stats.reflection_failures == 0


def test_event_budget_respected():
    config = FragDroidConfig(max_events=10)
    result = explore_with(config)
    # Budget is checked between items/clicks, so slight overshoot is
    # possible but bounded.
    assert result.stats.events <= 40
