"""Explorer edge conditions: packed apps, tiny queues, no-fragment apps."""

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import ActivitySpec, AppSpec, StartActivity, WidgetSpec, build_apk
from repro.errors import PackedApkError
from tests.conftest import make_full_demo_spec


def test_packed_apk_raises_cleanly():
    spec = make_full_demo_spec()
    spec.packed = True
    with pytest.raises(PackedApkError):
        FragDroid(Device()).explore(build_apk(spec))


def test_tiny_queue_limit_still_terminates():
    config = FragDroidConfig(max_queue_items=3)
    result = FragDroid(Device(), config).explore(
        build_apk(make_full_demo_spec())
    )
    # Coverage suffers, but the run ends and reports consistently.
    assert result.stats.test_cases <= 4
    assert result.visited_activities


def test_fragmentless_app_explores_fully():
    spec = AppSpec(
        package="com.nofrags",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="a", on_click=StartActivity("SecondActivity")),
            ]),
            ActivitySpec(name="SecondActivity"),
        ],
    )
    result = FragDroid(Device()).explore(build_apk(spec))
    assert len(result.visited_activities) == 2
    assert result.fragment_total == 0
    assert result.fragment_rate == 0.0
    visited, total = result.fragments_in_visited_activities()
    assert (visited, total) == (0, 0)


def test_single_activity_app():
    spec = AppSpec(
        package="com.single",
        activities=[ActivitySpec(name="OnlyActivity", launcher=True)],
    )
    result = FragDroid(Device()).explore(build_apk(spec))
    assert result.visited_activities == {"com.single.OnlyActivity"}
    assert result.aftm.is_complete()


def test_crash_on_launch_app_reported_unvisited():
    spec = AppSpec(
        package="com.bootcrash",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True,
                         crashes_on_launch=True,
                         widgets=[WidgetSpec(
                             id="a", on_click=StartActivity("NextActivity"))]),
            ActivitySpec(name="NextActivity"),
        ],
    )
    result = FragDroid(Device()).explore(build_apk(spec))
    # The launcher crashes in onCreate and stays unvisited; the second
    # loop's forced start still recovers the other activity.
    assert "com.bootcrash.MainActivity" not in result.visited_activities
    assert result.visited_activities <= {"com.bootcrash.NextActivity"}
    assert result.stats.failed_items >= 1