"""Run diffing across app versions."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.diff import diff_runs
from repro.corpus import demo_tabbed_app
from repro.corpus.mutations import inject_crash, remove_handler


def explore(spec):
    return FragDroid(Device()).explore(build_apk(spec))


@pytest.fixture(scope="module")
def baseline():
    return explore(demo_tabbed_app())


def test_identical_versions_diff_empty(baseline):
    diff = diff_runs(baseline, explore(demo_tabbed_app()))
    assert diff.is_empty
    assert "no behavioural difference" in diff.render()


def test_lost_coverage_detected(baseline):
    # Removing the tab handler makes RecentFragment unreachable by
    # click; reflection still shows it, so remove via crash instead.
    v2 = inject_crash(demo_tabbed_app(), "category_row")
    diff = diff_runs(baseline, explore(v2))
    # DetailActivity was only reachable through category_row.
    assert "com.example.wallpapers.DetailActivity" in diff.activities_lost
    assert not diff.is_empty
    assert "activities lost" in diff.render()


def test_api_loss_detected(baseline):
    v2 = demo_tabbed_app()
    v2.fragment("RecentFragment").api_calls.clear()
    diff = diff_runs(baseline, explore(v2))
    assert "internet/Connectivity.getActiveNetworkInfo" in diff.apis_lost


def test_attribution_change_detected(baseline):
    v2 = demo_tabbed_app()
    # The API moves from the fragment into the host activity.
    api = v2.fragment("RecentFragment").api_calls.pop()
    v2.activity("GalleryActivity").api_calls.append(api)
    diff = diff_runs(baseline, explore(v2))
    assert any(entry[0] == api for entry in diff.attribution_changed)


def test_mismatched_packages_rejected(baseline):
    from repro.corpus import demo_drawer_app

    with pytest.raises(ValueError):
        diff_runs(baseline, explore(demo_drawer_app()))