"""Test case generation: Robotium rendering and operation replay."""

import pytest

from repro.adb import Adb, instrument_manifest
from repro.core.queue import (
    Operation,
    OpKind,
    click_op,
    force_start_op,
    launch_op,
    reflect_op,
    text_op,
)
from repro.core.testcase import TestCase
from repro.errors import TestCaseError
from repro.robotium import Solo


@pytest.fixture
def ready(device, demo_apk):
    adb = Adb(device)
    adb.install(instrument_manifest(demo_apk))
    return Solo(device), adb


def test_java_rendering_contains_template(demo_apk):
    case = TestCase("com.example.demo", "GeneratedTest0001",
                    (launch_op(), click_op("btn_next"),
                     text_op("password", "x")))
    java = case.to_robotium_java()
    assert "package com.example.demo.test;" in java
    assert "import com.robotium.solo.Solo;" in java
    assert 'solo.clickOnView(solo.getView("btn_next"));' in java
    assert 'solo.enterText((EditText) solo.getView("password"), "x");' in java
    assert "public class GeneratedTest0001" in java


def test_reflection_rendered_as_template(demo_apk):
    case = TestCase("com.example.demo", "T",
                    (reflect_op("com.example.demo.NewsFragment"),))
    java = case.to_robotium_java()
    assert "getFragmentManager" in java
    assert 'Class.forName("com.example.demo.NewsFragment")' in java


def test_run_replays_path(ready):
    solo, adb = ready
    case = TestCase("com.example.demo", "T",
                    (launch_op(), click_op("btn_next")))
    case.run(solo, adb)
    assert solo.wait_for_activity("SecondActivity")


def test_run_executes_reflection(ready):
    solo, adb = ready
    case = TestCase(
        "com.example.demo", "T",
        (launch_op(), reflect_op("com.example.demo.NewsFragment")),
    )
    case.run(solo, adb)
    assert solo.device.current_fragment_classes() == [
        "com.example.demo.NewsFragment"
    ]


def test_run_fails_on_missing_widget(ready):
    solo, adb = ready
    case = TestCase("com.example.demo", "T",
                    (launch_op(), click_op("no_such")))
    with pytest.raises(TestCaseError):
        case.run(solo, adb)


def test_run_fails_when_app_dies(ready):
    solo, adb = ready
    case = TestCase(
        "com.example.demo", "T",
        (launch_op(), click_op("btn_next"), click_op("btn_crash")),
    )
    with pytest.raises(TestCaseError):
        case.run(solo, adb)


def test_forced_start_operation(ready):
    solo, adb = ready
    case = TestCase(
        "com.example.demo", "T",
        (force_start_op("com.example.demo/.SecondActivity"),),
    )
    case.run(solo, adb)
    assert solo.wait_for_activity("SecondActivity")


def test_install_and_run_goes_through_am_instrument(ready):
    solo, adb = ready
    case = TestCase("com.example.demo", "GeneratedTest0002", (launch_op(),))
    case.install_and_run(solo, adb)
    assert any("am instrument -w com.example.demo.test.GeneratedTest0002" in c
               for c in adb.command_log)


def test_java_escape_specials():
    from repro.core.testcase import java_escape

    assert java_escape('say "hi"') == 'say \\"hi\\"'
    assert java_escape("back\\slash") == "back\\\\slash"
    assert java_escape("line\nbreak\ttab") == "line\\nbreak\\ttab"
    assert java_escape("\r\f\b") == "\\r\\f\\b"
    assert java_escape("\x00\x1f") == "\\u0000\\u001f"
    assert java_escape("plain_id") == "plain_id"


def test_rendered_java_escapes_targets_and_values():
    """The satellite bug: a quote or backslash in a widget id or input
    value must not produce uncompilable Java."""
    case = TestCase(
        "com.example.demo", "T",
        (click_op('btn_"quoted"'),
         text_op("field\\path", 'multi\nline "text"'),
         reflect_op('com.x."Weird"Fragment'),
         force_start_op('com.x/.Act"ivity')),
    )
    java = case.to_robotium_java()
    assert 'solo.getView("btn_\\"quoted\\"")' in java
    assert 'solo.getView("field\\\\path")' in java
    assert '"multi\\nline \\"text\\""' in java
    assert 'Class.forName("com.x.\\"Weird\\"Fragment")' in java
    # No raw quote survives inside a rendered string literal.
    assert 'btn_"quoted"' not in java
    assert 'multi\nline' not in java
