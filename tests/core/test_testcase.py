"""Test case generation: Robotium rendering and operation replay."""

import pytest

from repro.adb import Adb, instrument_manifest
from repro.core.queue import (
    Operation,
    OpKind,
    click_op,
    force_start_op,
    launch_op,
    reflect_op,
    text_op,
)
from repro.core.testcase import TestCase
from repro.errors import TestCaseError
from repro.robotium import Solo


@pytest.fixture
def ready(device, demo_apk):
    adb = Adb(device)
    adb.install(instrument_manifest(demo_apk))
    return Solo(device), adb


def test_java_rendering_contains_template(demo_apk):
    case = TestCase("com.example.demo", "GeneratedTest0001",
                    (launch_op(), click_op("btn_next"),
                     text_op("password", "x")))
    java = case.to_robotium_java()
    assert "package com.example.demo.test;" in java
    assert "import com.robotium.solo.Solo;" in java
    assert 'solo.clickOnView(solo.getView("btn_next"));' in java
    assert 'solo.enterText((EditText) solo.getView("password"), "x");' in java
    assert "public class GeneratedTest0001" in java


def test_reflection_rendered_as_template(demo_apk):
    case = TestCase("com.example.demo", "T",
                    (reflect_op("com.example.demo.NewsFragment"),))
    java = case.to_robotium_java()
    assert "getFragmentManager" in java
    assert 'Class.forName("com.example.demo.NewsFragment")' in java


def test_run_replays_path(ready):
    solo, adb = ready
    case = TestCase("com.example.demo", "T",
                    (launch_op(), click_op("btn_next")))
    case.run(solo, adb)
    assert solo.wait_for_activity("SecondActivity")


def test_run_executes_reflection(ready):
    solo, adb = ready
    case = TestCase(
        "com.example.demo", "T",
        (launch_op(), reflect_op("com.example.demo.NewsFragment")),
    )
    case.run(solo, adb)
    assert solo.device.current_fragment_classes() == [
        "com.example.demo.NewsFragment"
    ]


def test_run_fails_on_missing_widget(ready):
    solo, adb = ready
    case = TestCase("com.example.demo", "T",
                    (launch_op(), click_op("no_such")))
    with pytest.raises(TestCaseError):
        case.run(solo, adb)


def test_run_fails_when_app_dies(ready):
    solo, adb = ready
    case = TestCase(
        "com.example.demo", "T",
        (launch_op(), click_op("btn_next"), click_op("btn_crash")),
    )
    with pytest.raises(TestCaseError):
        case.run(solo, adb)


def test_forced_start_operation(ready):
    solo, adb = ready
    case = TestCase(
        "com.example.demo", "T",
        (force_start_op("com.example.demo/.SecondActivity"),),
    )
    case.run(solo, adb)
    assert solo.wait_for_activity("SecondActivity")


def test_install_and_run_goes_through_am_instrument(ready):
    solo, adb = ready
    case = TestCase("com.example.demo", "GeneratedTest0002", (launch_op(),))
    case.install_and_run(solo, adb)
    assert any("am instrument -w com.example.demo.test.GeneratedTest0002" in c
               for c in adb.command_log)
