"""Regression testing over app versions, using spec mutations."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.regression import BROKEN, CRASH, PASS, run_regression
from repro.corpus.mutations import (
    inject_crash,
    remove_handler,
    rename_widget,
    swap_initial_fragment,
)
from repro.errors import ApkError, ReproError
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def baseline():
    return FragDroid(Device()).explore(build_apk(make_full_demo_spec()))


def test_same_version_all_pass(baseline):
    report = run_regression(baseline, build_apk(make_full_demo_spec()))
    assert report.ok
    assert report.passed == len(baseline.passing_test_cases)
    assert "passed" in report.render()


def test_renamed_widget_breaks_paths(baseline):
    mutated = rename_widget(make_full_demo_spec(), "btn_next",
                            "btn_continue")
    report = run_regression(baseline, build_apk(mutated))
    assert report.broken > 0
    broken = report.of_status(BROKEN)
    assert any("btn_next" in o.detail for o in broken)


def test_injected_crash_detected(baseline):
    mutated = inject_crash(make_full_demo_spec(), "btn_next")
    report = run_regression(baseline, build_apk(mutated))
    assert report.crashed > 0
    assert not report.ok


def test_removed_handler_may_pass_silently(baseline):
    # Removing the drawer item's handler: the click lands but navigates
    # nowhere; replay detects it because the path then dies or the
    # follow-up click targets a missing widget.
    mutated = remove_handler(make_full_demo_spec(), "nav_settings")
    report = run_regression(baseline, build_apk(mutated))
    # The suite as a whole must flag *something* for paths through the
    # drawer; paths not using the drawer still pass.
    assert report.passed > 0


def test_package_mismatch_rejected(baseline):
    other = make_full_demo_spec("com.other.app")
    with pytest.raises(ReproError):
        run_regression(baseline, build_apk(other))


# -- mutation operators -----------------------------------------------------------

def test_mutations_do_not_touch_original():
    spec = make_full_demo_spec()
    rename_widget(spec, "btn_next", "x")
    remove_handler(spec, "btn_next")
    inject_crash(spec, "btn_next")
    widget = next(w for w in spec.activity("MainActivity").widgets
                  if w.id == "btn_next")
    assert widget.on_click is not None


def test_mutation_unknown_widget():
    with pytest.raises(ApkError):
        rename_widget(make_full_demo_spec(), "ghost", "x")


def test_swap_initial_fragment():
    mutated = swap_initial_fragment(make_full_demo_spec(), "MainActivity",
                                    "NewsFragment")
    assert mutated.activity("MainActivity").initial_fragment == "NewsFragment"


def test_mutating_drawer_item():
    mutated = rename_widget(make_full_demo_spec(), "nav_settings", "nav_cfg")
    drawer = mutated.activity("MainActivity").drawer
    assert [w.id for w in drawer.items] == ["nav_cfg"]