"""AFTM and run-report serialization."""

import json

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core.report import (
    aftm_from_json,
    aftm_to_dict,
    aftm_to_json,
    result_to_dict,
    result_to_json,
)
from repro.corpus import demo_aftm_example
from repro.static.aftm import AFTM, activity_node, fragment_node


def make_model():
    model = AFTM("com.s", entry=activity_node("com.s.A0"))
    model.add_transition(activity_node("com.s.A0"), activity_node("com.s.A1"),
                         trigger="btn_go")
    model.add_transition(activity_node("com.s.A0"),
                         fragment_node("com.s.F0"), host="com.s.A0")
    model.add_transition(fragment_node("com.s.F0"),
                         fragment_node("com.s.F1"), host="com.s.A0")
    model.mark_visited(activity_node("com.s.A0"))
    model.mark_visited(fragment_node("com.s.F0"))
    return model


def test_aftm_json_round_trip():
    model = make_model()
    restored = aftm_from_json(aftm_to_json(model))
    assert restored.package == model.package
    assert restored.entry == model.entry
    assert restored.nodes == model.nodes
    assert restored.visited == model.visited
    assert {(e.src, e.dst, e.kind, e.host, e.trigger)
            for e in restored.edges} == {
        (e.src, e.dst, e.kind, e.host, e.trigger) for e in model.edges
    }


def test_aftm_dict_shape():
    data = aftm_to_dict(make_model())
    assert data["entry"] == "com.s.A0"
    assert data["activities"] == ["com.s.A0", "com.s.A1"]
    assert data["fragments"] == ["com.s.F0", "com.s.F1"]
    assert len(data["edges"]) == 3
    kinds = {e["kind"] for e in data["edges"]}
    assert kinds == {"E1", "E2", "E3"}


def test_restored_model_continues_evolving():
    restored = aftm_from_json(aftm_to_json(make_model()))
    assert restored.add_transition(
        activity_node("com.s.A1"), fragment_node("com.s.F2"),
        host="com.s.A1", trigger="tab",
    )
    assert not restored.is_complete()


@pytest.fixture(scope="module")
def run_result():
    return FragDroid(Device()).explore(build_apk(demo_aftm_example()))


def test_result_report_shape(run_result):
    data = result_to_dict(run_result)
    assert data["package"] == "com.example.aftm"
    coverage = data["coverage"]
    assert coverage["activities"]["sum"] == 2
    assert coverage["fragments"]["sum"] == 3
    assert 0 < coverage["activities"]["rate"] <= 1
    assert data["stats"]["test_cases"] > 0
    assert any(inv["source"] == "fragment"
               for inv in data["api_invocations"])


def test_result_json_is_valid(run_result):
    parsed = json.loads(result_to_json(run_result))
    assert parsed["aftm"]["package"] == "com.example.aftm"
    restored = aftm_from_json(json.dumps(parsed["aftm"]))
    assert restored.is_complete()
