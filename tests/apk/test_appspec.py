"""AppSpec validation rules and derived properties."""

import pytest

from repro.apk import (
    ActivitySpec,
    AppSpec,
    DrawerSpec,
    FragmentSpec,
    ShowFragment,
    StartActivity,
    WidgetSpec,
)
from repro.errors import ApkError
from repro.types import WidgetKind


def minimal(**kwargs):
    defaults = dict(
        package="com.t",
        activities=[ActivitySpec(name="MainActivity", launcher=True)],
        fragments=[],
    )
    defaults.update(kwargs)
    return AppSpec(**defaults)


def test_exactly_one_launcher_required():
    with pytest.raises(ApkError):
        minimal(activities=[ActivitySpec(name="A"), ActivitySpec(name="B")])
    with pytest.raises(ApkError):
        minimal(activities=[ActivitySpec(name="A", launcher=True),
                            ActivitySpec(name="B", launcher=True)])


def test_duplicate_activity_names_rejected():
    with pytest.raises(ApkError):
        minimal(activities=[ActivitySpec(name="A", launcher=True),
                            ActivitySpec(name="A")])


def test_duplicate_fragment_names_rejected():
    with pytest.raises(ApkError):
        minimal(fragments=[FragmentSpec(name="F"), FragmentSpec(name="F")])


def test_hosted_fragment_must_be_declared():
    with pytest.raises(ApkError):
        minimal(
            activities=[
                ActivitySpec(name="MainActivity", launcher=True,
                             hosted_fragments=["GhostFragment"])
            ]
        )


def test_initial_fragment_auto_added_to_hosted():
    spec = minimal(
        activities=[ActivitySpec(name="MainActivity", launcher=True,
                                 initial_fragment="HomeFragment")],
        fragments=[FragmentSpec(name="HomeFragment")],
    )
    activity = spec.activity("MainActivity")
    assert "HomeFragment" in activity.hosted_fragments
    assert activity.container_id == "fragment_container"


def test_qualify():
    spec = minimal()
    assert spec.qualify("Foo") == "com.t.Foo"
    assert spec.qualify("com.other.Foo") == "com.other.Foo"


def test_lookup_by_simple_or_qualified_name():
    spec = minimal(fragments=[FragmentSpec(name="NewsFragment")])
    assert spec.fragment("NewsFragment").name == "NewsFragment"
    assert spec.fragment("com.t.NewsFragment").name == "NewsFragment"
    with pytest.raises(ApkError):
        spec.fragment("Nope")
    with pytest.raises(ApkError):
        spec.activity("Nope")


def test_launcher_property():
    spec = minimal()
    assert spec.launcher.name == "MainActivity"


def test_widget_handler_requires_clickable_kind():
    with pytest.raises(ApkError):
        WidgetSpec(id="t", kind=WidgetKind.TEXT_VIEW,
                   on_click=StartActivity("X"))


def test_empty_widget_id_rejected():
    with pytest.raises(ApkError):
        WidgetSpec(id="")


def test_bad_fragment_transaction_mode_rejected():
    with pytest.raises(ApkError):
        ShowFragment("F", "c", mode="detach")


def test_all_widgets_includes_drawer_toggle_and_items():
    activity = ActivitySpec(
        name="A", launcher=True,
        widgets=[WidgetSpec(id="btn")],
        drawer=DrawerSpec(items=[
            WidgetSpec(id="nav_1", kind=WidgetKind.DRAWER_ITEM,
                       on_click=StartActivity("B")),
        ]),
    )
    ids = [w.id for w in activity.all_widgets()]
    assert ids == ["btn", "drawer_toggle", "nav_1"]


def test_uses_fragments():
    assert not minimal().uses_fragments()
    assert minimal(fragments=[FragmentSpec(name="F")]).uses_fragments()
