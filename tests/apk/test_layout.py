"""Layout model and XML round trips."""

import pytest

from repro.apk.layout import Layout, LayoutElement
from repro.errors import ApkError
from repro.types import WidgetKind


def make_layout():
    layout = Layout("activity_main", container_id="fragment_container")
    layout.add(LayoutElement("btn_go", WidgetKind.BUTTON, text="Go"))
    layout.add(LayoutElement("title", WidgetKind.TEXT_VIEW, text="Hi",
                             clickable=False))
    layout.add(LayoutElement("field", WidgetKind.EDIT_TEXT))
    return layout


def test_widget_ids_include_container():
    layout = make_layout()
    assert set(layout.widget_ids()) == {
        "btn_go", "title", "field", "fragment_container"
    }


def test_duplicate_widget_id_rejected():
    layout = make_layout()
    with pytest.raises(ApkError):
        layout.add(LayoutElement("btn_go", WidgetKind.BUTTON))


def test_xml_round_trip():
    layout = make_layout()
    parsed = Layout.from_xml("activity_main", layout.to_xml())
    assert parsed.container_id == "fragment_container"
    assert [e.widget_id for e in parsed.elements] == [
        e.widget_id for e in layout.elements
    ]
    assert [e.kind for e in parsed.elements] == [
        e.kind for e in layout.elements
    ]
    assert [e.clickable for e in parsed.elements] == [
        e.clickable for e in layout.elements
    ]


def test_xml_round_trip_preserves_text():
    parsed = Layout.from_xml("x", make_layout().to_xml())
    by_id = {e.widget_id: e for e in parsed.elements}
    assert by_id["btn_go"].text == "Go"
    assert by_id["title"].text == "Hi"


def test_xml_has_android_namespace_shape():
    xml = make_layout().to_xml()
    assert xml.startswith('<?xml version="1.0"')
    assert 'android:id="@+id/btn_go"' in xml
    assert "<FrameLayout" in xml


def test_layout_without_container():
    layout = Layout("fragment_news")
    layout.add(LayoutElement("row", WidgetKind.LIST_ITEM))
    parsed = Layout.from_xml("fragment_news", layout.to_xml())
    assert parsed.container_id is None
    assert parsed.widget_ids() == ["row"]
