"""The AppSpec → ApkPackage compiler: artifact shapes and idioms."""

import pytest

from repro.apk import build_apk
from repro.apk.builder import mangle
from repro.apk.manifest import ACTION_MAIN, Manifest
from repro.errors import PackedApkError
from repro.smali.apktool import Apktool
from repro.smali.assemble import parse_class


@pytest.fixture
def decoded(demo_apk):
    return Apktool().decode(demo_apk)


def test_manifest_declares_all_activities(demo_apk, demo_spec):
    manifest = Manifest.from_xml(demo_apk.manifest_xml)
    assert len(manifest.activities) == len(demo_spec.activities)
    assert manifest.launcher_activity.name == "com.example.demo.MainActivity"


def test_intent_action_filter_emitted(demo_apk):
    manifest = Manifest.from_xml(demo_apk.manifest_xml)
    about = manifest.activity("com.example.demo.AboutActivity")
    assert about.handles_action("com.example.demo.action.ABOUT")


def test_every_component_has_a_smali_file(demo_apk, demo_spec):
    for activity in demo_spec.activities:
        path = f"com/example/demo/{activity.name}.smali"
        assert path in demo_apk.smali_files
    for fragment in demo_spec.fragments:
        path = f"com/example/demo/{fragment.name}.smali"
        assert path in demo_apk.smali_files


def test_listener_inner_classes_emitted(demo_apk):
    inner = [p for p in demo_apk.smali_files if "MainActivity$" in p]
    # MainActivity has several handled widgets, incl. the drawer item and
    # the nested popup-menu item handler.
    assert len(inner) >= 6


def test_activity_oncreate_shape(decoded):
    cls = decoded.class_by_name("com.example.demo.MainActivity")
    on_create = cls.method("onCreate")
    assert on_create is not None
    names = [i.method.name for i in on_create.instructions if i.is_invoke]
    assert "setContentView" in names
    assert "getFragmentManager" in names  # initial fragment transaction
    assert "beginTransaction" in names
    assert "replace" in names
    assert "commit" in names
    assert "setOnClickListener" in names


def test_fragment_super_class(decoded):
    cls = decoded.class_by_name("com.example.demo.HomeFragment")
    assert cls.super_name == "android.app.Fragment"


def test_new_instance_factory_method(decoded):
    cls = decoded.class_by_name("com.example.demo.DetailFragment")
    factory = cls.method("newInstance")
    assert factory is not None and factory.static
    assert factory.ret == "com.example.demo.DetailFragment"


def test_args_factory_takes_string(decoded):
    cls = decoded.class_by_name("com.example.demo.ArgsFragment")
    factory = cls.method("newInstance")
    assert factory.params == ["java.lang.String"]


def test_unmanaged_fragment_has_no_layout(demo_apk):
    assert not any("raw_fragment" in p for p in demo_apk.layout_files)
    assert "res/layout/fragment_home_fragment.xml" in demo_apk.layout_files


def test_sensitive_api_invoke_emitted(decoded):
    cls = decoded.class_by_name("com.example.demo.MainActivity")
    refs = [r.descriptor() for m in cls.methods for r in m.invokes()]
    assert any("getDeviceId" in r for r in refs)


def test_packed_flag_propagates(demo_spec):
    demo_spec.packed = True
    apk = build_apk(demo_spec)
    assert apk.packed
    with pytest.raises(PackedApkError):
        Apktool().decode(apk)


def test_smali_files_parse_standalone(demo_apk):
    for path, text in demo_apk.smali_files.items():
        cls = parse_class(text)
        assert cls.file_name == path


def test_mangle_is_reversible_but_not_identity():
    assert mangle("com.app.Foo") != "com.app.Foo"
    assert mangle(mangle("com.app.Foo")) == "com.app.Foo"


def test_size_estimate_positive(demo_apk):
    assert demo_apk.size_estimate() > 1000


def test_runtime_spec_round_trip(demo_apk, demo_spec):
    assert demo_apk.runtime_spec() is demo_spec
