"""Resource table: ID assignment, uniqueness, round trips."""

import pytest

from repro.apk.resources import ResourceTable
from repro.errors import ResourceError
from repro.types import RESOURCE_ID_BASE


def test_define_assigns_app_range_ids():
    table = ResourceTable("com.app")
    rid = table.define("id", "btn_login")
    assert RESOURCE_ID_BASE <= rid.value < 0x80000000
    assert rid.name == "btn_login"


def test_define_is_idempotent():
    table = ResourceTable("com.app")
    first = table.define("id", "btn")
    second = table.define("id", "btn")
    assert first == second
    assert len(table) == 1


def test_ids_unique_across_names():
    table = ResourceTable("com.app")
    values = {table.define("id", f"w{i}").value for i in range(100)}
    assert len(values) == 100


def test_types_use_distinct_namespaces():
    table = ResourceTable("com.app")
    id_rid = table.define("id", "main")
    layout_rid = table.define("layout", "main")
    assert id_rid.value != layout_rid.value
    assert table.lookup("id", "main") == id_rid
    assert table.lookup("layout", "main") == layout_rid


def test_lookup_missing_raises():
    table = ResourceTable("com.app")
    with pytest.raises(ResourceError):
        table.lookup("id", "nope")


def test_get_missing_returns_none():
    assert ResourceTable("com.app").get("id", "nope") is None


def test_unknown_type_rejected():
    with pytest.raises(ResourceError):
        ResourceTable("com.app").define("color", "red")


def test_reverse_lookup():
    table = ResourceTable("com.app")
    rid = table.define("id", "fragment_container")
    assert table.reverse(rid.value) == ("id", "fragment_container")
    assert table.name_of(rid.value) == "fragment_container"


def test_reverse_unknown_raises():
    with pytest.raises(ResourceError):
        ResourceTable("com.app").reverse(0x7F010099)


def test_public_xml_round_trip():
    table = ResourceTable("com.app")
    table.define("id", "btn_a")
    table.define("layout", "activity_main")
    table.define("string", "title")
    xml = table.to_public_xml()
    parsed = ResourceTable.from_public_xml("com.app", xml)
    assert parsed.lookup("id", "btn_a") == table.lookup("id", "btn_a")
    assert parsed.lookup("layout", "activity_main") == table.lookup(
        "layout", "activity_main"
    )
    assert len(parsed) == len(table)


def test_round_trip_preserves_counters():
    table = ResourceTable("com.app")
    for i in range(5):
        table.define("id", f"w{i}")
    parsed = ResourceTable.from_public_xml("com.app", table.to_public_xml())
    # New definitions continue after the restored entries, no collisions.
    fresh = parsed.define("id", "w_new")
    existing = {rid.value for _, _, rid in parsed.entries("id")
                if rid.name != "w_new"}
    assert fresh.value not in existing


def test_entries_filtered_by_type():
    table = ResourceTable("com.app")
    table.define("id", "a")
    table.define("layout", "b")
    ids = list(table.entries("id"))
    assert len(ids) == 1
    assert ids[0][1] == "a"
