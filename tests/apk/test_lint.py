"""The APK lint checker."""

import pytest

from repro.apk import build_apk
from repro.apk.lint import lint_apk
from repro.apk.manifest import Manifest
from repro.apk.package import ApkPackage
from repro.corpus import TABLE1_PLANS, build_app, generate_market


def test_demo_apk_is_clean(demo_apk):
    report = lint_apk(demo_apk)
    assert report.ok, report.render()
    assert report.render() == "lint: clean" or report.warnings


def test_whole_corpus_is_clean():
    for plan in TABLE1_PLANS:
        report = lint_apk(build_apk(build_app(plan)))
        assert report.ok, f"{plan.package}\n{report.render()}"


def test_market_sample_is_clean():
    for app in generate_market(count=20):
        if app.packed:
            continue
        report = lint_apk(app.build())
        assert report.ok, f"{app.package}\n{report.render()}"


def test_packed_apk_only_warns(demo_spec):
    demo_spec.packed = True
    report = lint_apk(build_apk(demo_spec))
    assert report.ok
    assert report.warnings and report.warnings[0].code == "packed"


def _tamper(apk: ApkPackage, **overrides) -> ApkPackage:
    fields = dict(
        package=apk.package,
        manifest_xml=apk.manifest_xml,
        smali_files=dict(apk.smali_files),
        layout_files=dict(apk.layout_files),
        public_xml=apk.public_xml,
        packed=apk.packed,
        _spec=apk.runtime_spec(),
    )
    fields.update(overrides)
    return ApkPackage(**fields)


def test_missing_class_detected(demo_apk):
    manifest = Manifest.from_xml(demo_apk.manifest_xml)
    from repro.apk.manifest import ActivityDecl

    manifest.add_activity(ActivityDecl(name="com.example.demo.GhostActivity"))
    tampered = _tamper(demo_apk, manifest_xml=manifest.to_xml())
    report = lint_apk(tampered)
    assert not report.ok
    assert any(f.code == "missing-class" for f in report.errors)


def test_orphan_inner_class_detected(demo_apk):
    smali = dict(demo_apk.smali_files)
    orphan = (
        ".class public Lcom/example/demo/Nowhere$1;\n"
        ".super Ljava/lang/Object;\n"
    )
    smali["com/example/demo/Nowhere$1.smali"] = orphan
    report = lint_apk(_tamper(demo_apk, smali_files=smali))
    assert any(f.code == "orphan-inner" for f in report.errors)


def test_dangling_resource_detected(demo_apk):
    smali = dict(demo_apk.smali_files)
    bad = (
        ".class public Lcom/example/demo/Bad;\n"
        ".super Ljava/lang/Object;\n\n"
        ".method public m()V\n"
        "    .registers 2\n"
        "    const v0, 0x7f01ffff\n"
        "    return-void\n"
        ".end method\n"
    )
    smali["com/example/demo/Bad.smali"] = bad
    report = lint_apk(_tamper(demo_apk, smali_files=smali))
    assert any(f.code == "dangling-resource" for f in report.errors)


def test_finding_rendering():
    from repro.apk.lint import LintFinding

    finding = LintFinding("error", "x", "boom")
    assert str(finding) == "[error] x: boom"
