"""Spec JSON round trips and on-disk APK files."""

import pytest

from repro.apk import build_apk
from repro.apk.apkfile import load_apk, save_apk
from repro.apk.appspec import (
    Chain,
    Crash,
    FinishActivity,
    InvokeApi,
    Noop,
    OpenDrawer,
    ShowDialog,
    ShowFragment,
    ShowPopupMenu,
    StartActivity,
    StartActivityByAction,
    SubmitForm,
    ToggleWidget,
    WidgetSpec,
)
from repro.apk.serialize import (
    action_from_dict,
    action_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.errors import ApkError
from tests.conftest import make_full_demo_spec


@pytest.mark.parametrize(
    "action",
    [
        Noop(),
        StartActivity("SecondActivity"),
        StartActivity("SecondActivity", dynamic=True),
        StartActivityByAction("com.a.GO", dynamic=True),
        ShowFragment("F", "c", mode="add", add_to_back_stack=True),
        OpenDrawer(),
        ShowDialog("msg", buttons=(WidgetSpec(id="ok", text="OK"),)),
        ShowPopupMenu(items=(
            WidgetSpec(id="m1", on_click=StartActivity("X")),
        )),
        InvokeApi("phone/getDeviceId"),
        Crash("boom"),
        FinishActivity(),
        ToggleWidget("chk"),
        Chain(actions=(InvokeApi("storage/sdcard"), FinishActivity())),
        SubmitForm(required={"f": "v"}, rules={"g": "city"},
                   on_success=StartActivity("X"),
                   on_failure=ShowDialog("no")),
    ],
)
def test_action_round_trip(action):
    restored = action_from_dict(action_to_dict(action))
    assert action_to_dict(restored) == action_to_dict(action)
    assert type(restored) is type(action)


def test_unknown_action_type_rejected():
    with pytest.raises(ApkError):
        action_from_dict({"type": "teleport"})


def test_spec_round_trip_equivalent_compilation():
    spec = make_full_demo_spec()
    restored = spec_from_dict(spec_to_dict(spec))
    original_apk = build_apk(spec)
    restored_apk = build_apk(restored)
    assert restored_apk.manifest_xml == original_apk.manifest_xml
    assert restored_apk.smali_files == original_apk.smali_files
    assert restored_apk.layout_files == original_apk.layout_files
    assert restored_apk.public_xml == original_apk.public_xml


def test_corpus_specs_round_trip():
    from repro.corpus import TABLE1_PLANS, build_app

    for plan in TABLE1_PLANS[:5]:
        spec = build_app(plan)
        restored = spec_from_dict(spec_to_dict(spec))
        assert build_apk(restored).smali_files == build_apk(spec).smali_files


# -- apk files ----------------------------------------------------------------------

def test_apk_file_round_trip(tmp_path, demo_apk):
    path = save_apk(demo_apk, tmp_path / "demo.apk")
    loaded = load_apk(path)
    assert loaded.package == demo_apk.package
    assert loaded.manifest_xml == demo_apk.manifest_xml
    assert loaded.smali_files == demo_apk.smali_files
    assert loaded.layout_files == demo_apk.layout_files
    assert loaded.public_xml == demo_apk.public_xml
    assert loaded.packed == demo_apk.packed


def test_loaded_apk_explores_identically(tmp_path, demo_apk):
    from repro import Device, FragDroid

    path = save_apk(demo_apk, tmp_path / "demo.apk")
    original = FragDroid(Device()).explore(demo_apk)
    loaded = FragDroid(Device()).explore(load_apk(path))
    assert loaded.visited_activities == original.visited_activities
    assert loaded.visited_fragments == original.visited_fragments


def test_missing_file_rejected(tmp_path):
    with pytest.raises(ApkError):
        load_apk(tmp_path / "absent.apk")


def test_truncated_archive_rejected(tmp_path, demo_apk):
    import zipfile

    path = tmp_path / "broken.apk"
    with zipfile.ZipFile(path, "w") as archive:
        archive.writestr("AndroidManifest.xml", demo_apk.manifest_xml)
    with pytest.raises(ApkError):
        load_apk(path)


def test_packed_flag_survives(tmp_path, demo_spec):
    demo_spec.packed = True
    path = save_apk(build_apk(demo_spec), tmp_path / "packed.apk")
    assert load_apk(path).packed