"""Manifest model: declarations, resolution, XML round trips."""

import pytest

from repro.apk.manifest import (
    ACTION_MAIN,
    CATEGORY_LAUNCHER,
    ActivityDecl,
    IntentFilter,
    Manifest,
)
from repro.errors import ManifestError


def make_manifest():
    manifest = Manifest("com.app")
    manifest.add_activity(
        ActivityDecl(
            name="com.app.MainActivity",
            exported=True,
            intent_filters=[
                IntentFilter(actions=[ACTION_MAIN],
                             categories=[CATEGORY_LAUNCHER])
            ],
        )
    )
    manifest.add_activity(ActivityDecl(name="com.app.SecondActivity"))
    manifest.add_activity(
        ActivityDecl(
            name="com.app.ShareActivity",
            exported=True,
            intent_filters=[IntentFilter(actions=["com.app.action.SHARE"])],
        )
    )
    return manifest


def test_launcher_detection():
    manifest = make_manifest()
    assert manifest.launcher_activity.name == "com.app.MainActivity"


def test_duplicate_activity_rejected():
    manifest = make_manifest()
    with pytest.raises(ManifestError):
        manifest.add_activity(ActivityDecl(name="com.app.MainActivity"))


def test_activity_lookup_accepts_shorthand():
    manifest = make_manifest()
    assert manifest.activity(".SecondActivity").name == "com.app.SecondActivity"
    assert manifest.activity("com.app.SecondActivity") is not None
    assert manifest.activity("com.app.Missing") is None


def test_action_resolution():
    manifest = make_manifest()
    matches = manifest.resolve_action("com.app.action.SHARE")
    assert [d.name for d in matches] == ["com.app.ShareActivity"]
    assert manifest.resolve_action("com.app.action.NONE") == []


def test_xml_round_trip():
    manifest = make_manifest()
    manifest.uses_permissions.append("android.permission.INTERNET")
    parsed = Manifest.from_xml(manifest.to_xml())
    assert parsed.package == "com.app"
    assert [d.name for d in parsed.activities] == [
        d.name for d in manifest.activities
    ]
    assert parsed.launcher_activity.name == "com.app.MainActivity"
    assert parsed.activity("com.app.ShareActivity").handles_action(
        "com.app.action.SHARE"
    )
    assert parsed.uses_permissions == ["android.permission.INTERNET"]
    assert parsed.activity("com.app.SecondActivity").exported is False


def test_intent_filter_matching():
    ifilter = IntentFilter(actions=["a.b.C"], categories=["cat"])
    assert ifilter.matches("a.b.C")
    assert ifilter.matches("a.b.C", "cat")
    assert not ifilter.matches("a.b.D")
    assert not ifilter.matches("a.b.C", "other")
    assert not ifilter.matches(None)


def test_from_xml_requires_package():
    with pytest.raises(ManifestError):
        Manifest.from_xml("<manifest></manifest>")
