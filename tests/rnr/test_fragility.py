"""The fragility study (repro.rnr.fragility)."""

import json

import pytest

from repro.core.config import FragDroidConfig
from repro.corpus import demo_tabbed_app
from repro.rnr import run_fragility
from repro.rnr.fragility import CONTROL, plan_mutations
from repro.rnr.export import script_from_testcase
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def report():
    return run_fragility(demo_tabbed_app(), seed=7)


def test_control_replays_divergence_free(report):
    assert report.control_ok
    control = next(r for r in report.rows if r.mutation == CONTROL)
    assert control.broken == 0
    assert control.events_applied == control.events_total
    assert control.surviving == control.recorded


def test_mutations_actually_break_scripts(report):
    assert report.breakage_total > 0
    names = [r.mutation for r in report.rows]
    assert names[0] == CONTROL
    assert "rename-widget" in names
    assert "rename-fragment" in names
    assert "add-activity" in names
    assert "shuffle-widget-ids" in names


def test_breakages_name_step_and_reason(report):
    breakages = [b for r in report.rows for b in r.breakages]
    assert breakages
    for breakage in breakages:
        assert breakage["script"]
        assert isinstance(breakage["step"], int)
        assert breakage["reason"]


def test_render_is_a_table(report):
    text = report.render()
    assert "mutation" in text
    assert CONTROL in text
    assert "breakages:" in text


def test_fragility_is_deterministic_under_a_seed(report):
    again = run_fragility(demo_tabbed_app(), seed=7)
    assert again.render() == report.render()
    assert json.dumps(again.to_dict(), sort_keys=True) == \
        json.dumps(report.to_dict(), sort_keys=True)


def test_to_dict_round_trips_through_json(report):
    data = json.loads(json.dumps(report.to_dict()))
    assert data["control_ok"] is True
    assert data["breakage_total"] == report.breakage_total
    assert len(data["rows"]) == len(report.rows)


def test_plan_mutations_is_seeded():
    spec = make_full_demo_spec()
    plans = plan_mutations(spec, [], seed=3)
    again = plan_mutations(make_full_demo_spec(), [], seed=3)
    assert [p.name for p in plans] == [p.name for p in again]
    assert [p.description for p in plans] == \
        [p.description for p in again]
    # Every planned spec still validates and differs from the original.
    for plan in plans:
        assert plan.spec is not spec


def test_plan_prefers_clicked_widgets():
    from repro import Device, FragDroid
    from repro.apk import build_apk

    spec = demo_tabbed_app()
    result = FragDroid(Device()).explore(build_apk(spec))
    scripts = [script_from_testcase(c) for c in result.passing_test_cases]
    clicked = {e.widget_id for s in scripts for e in s.events
               if e.kind == "click"}
    plan = next(p for p in plan_mutations(spec, scripts, seed=0)
                if p.name == "rename-widget")
    renamed = plan.description.split(" -> ")[0]
    assert renamed in clicked


def test_custom_event_budget_flows_through():
    report = run_fragility(demo_tabbed_app(), seed=1,
                           config=FragDroidConfig(max_events=50))
    assert report.scripts > 0
    assert report.control_ok
