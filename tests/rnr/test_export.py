"""The Operation -> RecordedEvent translator (repro.rnr.export)."""

import pytest

from repro.core.queue import OpKind, Operation
from repro.core.testcase import TestCase
from repro.errors import ReproError
from repro.rnr import SCRIPT_SCHEMA, ReplayScript, event_from_operation, script_from_testcase


def test_every_op_kind_translates():
    expected = {
        OpKind.LAUNCH: "launch",
        OpKind.CLICK: "click",
        OpKind.ENTER_TEXT: "text",
        OpKind.SWIPE_OPEN: "swipe",
        OpKind.BACK: "back",
        OpKind.REFLECT: "reflect",
        OpKind.FORCE_START: "start",
    }
    for op_kind, event_kind in expected.items():
        event = event_from_operation(Operation(op_kind, "t", "v"))
        assert event.kind == event_kind


def test_click_carries_widget_id():
    event = event_from_operation(Operation(OpKind.CLICK, "btn_login"))
    assert event.widget_id == "btn_login"
    assert event.text == ""


def test_enter_text_carries_value():
    event = event_from_operation(
        Operation(OpKind.ENTER_TEXT, "password", "hunter2"))
    assert event.widget_id == "password"
    assert event.text == "hunter2"


def test_reflect_and_start_use_the_target_slot():
    reflect = event_from_operation(
        Operation(OpKind.REFLECT, "com.app.NewsFragment"))
    assert reflect.widget_id == "com.app.NewsFragment"
    start = event_from_operation(
        Operation(OpKind.FORCE_START, "com.app/com.app.Hidden"))
    assert start.widget_id == "com.app/com.app.Hidden"


def test_script_from_testcase_steps_are_indices():
    case = TestCase("com.app", "T", [
        Operation(OpKind.LAUNCH),
        Operation(OpKind.CLICK, "a"),
        Operation(OpKind.BACK),
    ])
    script = script_from_testcase(case)
    assert script.package == "com.app"
    assert [e.step for e in script.events] == [0, 1, 2]
    assert [e.kind for e in script.events] == ["launch", "click", "back"]


def test_exported_script_round_trips_through_json():
    case = TestCase("com.app", "T", [
        Operation(OpKind.LAUNCH),
        Operation(OpKind.ENTER_TEXT, "field", "text"),
    ])
    script = script_from_testcase(case)
    restored = ReplayScript.from_json(script.to_json())
    assert restored.events == script.events
    assert f'"schema": {SCRIPT_SCHEMA}' in script.to_json()
