"""Replay-script validation: every malformation names its field."""

import json

import pytest

from repro.errors import ReproError
from repro.rnr import SCRIPT_SCHEMA, RecordedEvent, ReplayScript


def valid_payload():
    return {
        "schema": SCRIPT_SCHEMA,
        "package": "com.app",
        "events": [
            {"kind": "launch", "x": 0, "y": 0, "widget_id": "",
             "text": "", "step": 0},
        ],
    }


def loads(payload):
    return ReplayScript.from_json(json.dumps(payload))


def test_valid_script_loads():
    script = loads(valid_payload())
    assert script.package == "com.app"
    assert script.events == [RecordedEvent(kind="launch")]


def test_invalid_json_is_a_named_error():
    with pytest.raises(ReproError, match="not valid JSON"):
        ReplayScript.from_json("{not json")


def test_non_object_rejected():
    with pytest.raises(ReproError, match="JSON object"):
        ReplayScript.from_json("[1, 2]")


def test_unknown_top_level_field_named():
    payload = valid_payload()
    payload["speed"] = 2
    with pytest.raises(ReproError, match="speed"):
        loads(payload)


def test_missing_schema_named():
    payload = valid_payload()
    del payload["schema"]
    with pytest.raises(ReproError, match="'schema'"):
        loads(payload)


def test_foreign_schema_rejected():
    payload = valid_payload()
    payload["schema"] = SCRIPT_SCHEMA + 1
    with pytest.raises(ReproError, match="schema"):
        loads(payload)


def test_missing_package_named():
    payload = valid_payload()
    del payload["package"]
    with pytest.raises(ReproError, match="'package'"):
        loads(payload)


def test_empty_package_rejected():
    payload = valid_payload()
    payload["package"] = ""
    with pytest.raises(ReproError, match="'package'"):
        loads(payload)


def test_mistyped_package_named():
    payload = valid_payload()
    payload["package"] = 7
    with pytest.raises(ReproError, match="'package'.*str"):
        loads(payload)


def test_events_must_be_a_list():
    payload = valid_payload()
    payload["events"] = {}
    with pytest.raises(ReproError, match="'events'.*list"):
        loads(payload)


def test_event_must_be_an_object():
    payload = valid_payload()
    payload["events"] = ["launch"]
    with pytest.raises(ReproError, match=r"events\[0\]"):
        loads(payload)


def test_unknown_event_field_named_with_index():
    payload = valid_payload()
    payload["events"][0]["pressure"] = 1.0
    with pytest.raises(ReproError, match=r"events\[0\].*pressure"):
        loads(payload)


def test_missing_kind_named():
    payload = valid_payload()
    del payload["events"][0]["kind"]
    with pytest.raises(ReproError, match=r"events\[0\].*'kind'"):
        loads(payload)


def test_unknown_kind_named():
    payload = valid_payload()
    payload["events"][0]["kind"] = "teleport"
    with pytest.raises(ReproError, match="teleport"):
        loads(payload)


def test_mistyped_step_named():
    payload = valid_payload()
    payload["events"][0]["step"] = "zero"
    with pytest.raises(ReproError, match=r"'step'.*events\[0\].*int"):
        loads(payload)


def test_bool_step_is_not_an_int():
    payload = valid_payload()
    payload["events"][0]["step"] = True
    with pytest.raises(ReproError, match="'step'"):
        loads(payload)


def test_no_bare_key_or_type_errors():
    """The satellite bug: malformed scripts must never leak KeyError or
    TypeError out of from_json."""
    malformations = [
        "{}", "[]", "null", '{"schema": 2}', '{"package": "p"}',
        '{"schema": 2, "package": "p"}',
        '{"schema": 2, "package": "p", "events": [{}]}',
        '{"schema": 2, "package": "p", "events": [{"kind": 1}]}',
        '{"schema": "2", "package": "p", "events": []}',
    ]
    for text in malformations:
        with pytest.raises(ReproError):
            ReplayScript.from_json(text)
