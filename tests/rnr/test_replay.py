"""Divergence-reporting replay (repro.rnr.replay)."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.corpus.mutations import rename_widget
from repro.rnr import (
    RecordedEvent,
    ReplayScript,
    replay_run_record,
    replay_script,
    replay_suite,
    script_from_testcase,
)
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def explored():
    apk = build_apk(make_full_demo_spec())
    return FragDroid(Device()).explore(apk), apk


def test_replay_round_trip_reaches_identical_coverage():
    """Exported scripts replayed on a fresh device reproduce exactly
    the coverage the exploration visited."""
    from repro.corpus import demo_tabbed_app

    apk = build_apk(demo_tabbed_app())
    result = FragDroid(Device()).explore(apk)
    scripts = [script_from_testcase(c) for c in result.passing_test_cases]
    report = replay_suite(scripts, apk)
    assert report.ok
    assert report.diverged == 0
    assert report.events_applied == report.events_total
    assert set(report.activities) == set(result.visited_activities)
    assert set(report.fragments) == set(result.visited_fragments)


def test_replay_round_trip_reaches_at_least_visited_coverage(explored):
    """On the kitchen-sink demo the replay reaches everything visited
    (it may also sample unmanaged fragments the explorer excludes from
    its visited set, e.g. ones attached without a FragmentManager)."""
    result, apk = explored
    scripts = [script_from_testcase(c) for c in result.passing_test_cases]
    report = replay_suite(scripts, apk)
    assert report.ok
    assert set(result.visited_activities) <= set(report.activities)
    assert set(result.visited_fragments) <= set(report.fragments)


def test_replay_against_renamed_widget_diverges(explored):
    result, apk = explored
    scripts = [script_from_testcase(c) for c in result.passing_test_cases]
    clicked = next(e.widget_id for s in scripts for e in s.events
                   if e.kind == "click")
    drifted = build_apk(rename_widget(make_full_demo_spec(), clicked,
                                      f"{clicked}_v2"))
    report = replay_suite(scripts, drifted)
    assert report.diverged > 0
    broken = next(o for o in report.outcomes if not o.ok)
    assert broken.reason == "widget-missing"
    assert broken.diverged_at is not None
    assert broken.applied < broken.total
    assert "diverged at step" in report.render()


def test_replay_script_reports_instead_of_raising():
    apk = build_apk(make_full_demo_spec())
    script = ReplayScript(package=apk.package, events=[
        RecordedEvent(kind="launch"),
        RecordedEvent(kind="click", widget_id="no_such_widget", step=1),
    ])
    outcome = replay_script(script, Device(), apk=apk)
    assert not outcome.ok
    assert outcome.diverged_at == 1
    assert outcome.applied == 1
    assert outcome.reason == "widget-missing"
    assert outcome.error


def test_replay_categorizes_app_death():
    apk = build_apk(make_full_demo_spec())
    script = ReplayScript(package=apk.package, events=[
        RecordedEvent(kind="launch"),
        RecordedEvent(kind="click", widget_id="btn_next", step=1),
        RecordedEvent(kind="click", widget_id="btn_crash", step=2),
    ])
    outcome = replay_script(script, Device(), apk=apk)
    assert not outcome.ok
    assert outcome.reason == "app-died"
    assert outcome.diverged_at == 2


def test_replay_missing_app_diverges_at_launch():
    script = ReplayScript(package="com.not.installed", events=[
        RecordedEvent(kind="launch"),
    ])
    outcome = replay_script(script, Device())
    assert not outcome.ok
    assert outcome.diverged_at == 0
    assert outcome.applied == 0


def test_replay_outcome_coverage_is_sampled(explored):
    result, apk = explored
    case = result.passing_test_cases[0]
    outcome = replay_script(script_from_testcase(case), Device(), apk=apk,
                            name=case.name)
    assert outcome.ok
    assert outcome.activities  # at least the launcher activity
    assert outcome.name == case.name
    rendered = outcome.render()
    assert "divergence-free" in rendered
    assert "coverage reached" in rendered


def test_replay_run_record_carries_gate_counters(explored):
    result, apk = explored
    scripts = [script_from_testcase(c) for c in result.passing_test_cases]
    record = replay_run_record(replay_suite(scripts, apk))
    assert record.run_id
    assert record.label == f"replay:{apk.package}"
    assert record.coverage["replay_scripts"] == len(scripts)
    assert record.coverage["replay_diverged"] == 0
    assert record.coverage["replay_applied"] == record.coverage[
        "replay_events"]
    assert record.coverage["activities_visited"] == len(
        result.visited_activities)
