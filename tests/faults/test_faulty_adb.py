"""FaultyAdb: injection at the command gate, healing through retries."""

import pytest

from repro.errors import DeviceDisconnectedError, TransientError
from repro.faults import (
    FaultPlan,
    FaultyAdb,
    FaultyDevice,
    RetryPolicy,
    fault_plan,
)
from tests.conftest import make_full_demo_spec


def _apk():
    from repro.apk import build_apk

    return build_apk(make_full_demo_spec())


def _faulty_adb(plan, device=None, **kwargs):
    device = device if device is not None else FaultyDevice(plan)
    return FaultyAdb(device, plan=plan, **kwargs)


def test_clean_plan_behaves_like_plain_adb():
    adb = _faulty_adb(fault_plan("none"))
    assert adb.install(_apk()) == "Success"
    assert adb.am_start_launcher("com.example.demo")
    assert adb.retry_stats.retries == 0
    assert adb.command_log[0].startswith("adb install")


def test_transient_faults_are_retried_and_command_lands_once():
    # Certain transient failure on every first gate pass would never
    # succeed; use a high-but-not-1.0 rate and a generous budget so the
    # command eventually lands exactly once.
    plan = FaultPlan(profile="custom", seed=11, adb_transient_rate=0.6)
    adb = _faulty_adb(plan, policy=RetryPolicy(max_attempts=50))
    apk = _apk()
    assert adb.install(apk) == "Success"
    assert adb.device.is_installed("com.example.demo")
    assert adb.command_log.count(f"adb install {apk.apk_name}") == 1
    assert adb.retry_stats.retries > 0
    assert adb.retry_stats.recoveries == 1


def test_exhausted_budget_raises_transient_error():
    plan = FaultPlan(profile="custom", seed=1, adb_transient_rate=1.0)
    adb = _faulty_adb(plan, policy=RetryPolicy(max_attempts=3))
    with pytest.raises(TransientError):
        adb.install(_apk())
    assert adb.retry_stats.giveups == 1
    # The device never saw the command.
    assert not adb.device.is_installed("com.example.demo")


def test_disconnect_takes_bridge_down_until_reconnect():
    plan = FaultPlan(profile="custom", seed=2, disconnect_rate=1.0)
    adb = _faulty_adb(plan, policy=RetryPolicy(max_attempts=2))
    with pytest.raises(DeviceDisconnectedError):
        adb.install(_apk())
    # The retry path reconnected after the first drop (then the next
    # draw disconnected again until the budget ran out).
    assert "adb reconnect" in adb.command_log
    assert adb.reconnects >= 1


def test_disconnect_then_recovery():
    # Disconnect fires on the first draw with this seed, then the rate
    # is low enough that the retry lands.
    plan = FaultPlan(profile="custom", seed=3, disconnect_rate=0.4)
    adb = _faulty_adb(plan, policy=RetryPolicy(max_attempts=20))
    assert adb.install(_apk()) == "Success"
    assert adb.connected


def test_shares_injector_with_faulty_device():
    plan = fault_plan("hostile", seed=9)
    device = FaultyDevice(plan, scope="com.example.demo")
    adb = FaultyAdb(device, plan=plan)
    assert adb.injector is device.injector


def test_backoff_runs_on_simulated_clock():
    plan = FaultPlan(profile="custom", seed=11, adb_transient_rate=0.6)
    adb = _faulty_adb(plan, policy=RetryPolicy(max_attempts=50))
    adb.install(_apk())
    assert adb.clock.now == pytest.approx(adb.retry_stats.backoff_s)
    assert adb.clock.now > 0
