"""FaultyDevice: ANR and spurious-crash injection on widget clicks."""

import pytest

from repro.adb import Adb
from repro.errors import CommandTimeoutError
from repro.faults import FaultPlan, FaultyDevice, make_device
from tests.conftest import make_full_demo_spec


def _launched_device(plan):
    from repro.apk import build_apk

    device = FaultyDevice(plan, scope="demo")
    adb = Adb(device)
    adb.install(build_apk(make_full_demo_spec()))
    assert adb.am_start_launcher("com.example.demo")
    return device


def test_anr_raises_timeout_and_consumes_a_step():
    device = _launched_device(
        FaultPlan(profile="custom", seed=1, anr_rate=1.0)
    )
    steps = device.steps
    with pytest.raises(CommandTimeoutError, match="ANR"):
        device.click_widget("btn_next")
    assert device.steps == steps + 1
    # The app is still alive — the widget just never reacted.
    assert device.app_alive
    assert device.current_activity_name().endswith("MainActivity")
    assert any("ANR" in str(e) for e in device.logcat.entries())


def test_spurious_crash_kills_the_foreground_app():
    device = _launched_device(
        FaultPlan(profile="custom", seed=1, spurious_crash_rate=1.0)
    )
    crashes = device.crash_count
    device.click_widget("btn_next")  # would navigate on a healthy device
    assert not device.app_alive
    assert device.crash_count == crashes + 1
    assert any("FATAL EXCEPTION (injected)" in str(e)
               for e in device.logcat.entries())


def test_clean_plan_clicks_behave_normally():
    device = _launched_device(FaultPlan(profile="custom", seed=1))
    device.click_widget("btn_next")
    assert device.current_activity_name().endswith("SecondActivity")
    assert device.injector.injected == {}


def test_make_device_picks_the_right_class():
    from repro.android import Device
    from repro.faults import fault_plan

    assert type(make_device(None)) is Device
    assert type(make_device(fault_plan("none"))) is Device
    faulty = make_device(fault_plan("mild", seed=4), scope="com.x")
    assert isinstance(faulty, FaultyDevice)
    assert faulty.injector.scope == "com.x"
