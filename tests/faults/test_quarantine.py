"""WidgetQuarantine: the circuit breaker for chronically bad widgets."""

from repro.faults import WidgetQuarantine


def test_trips_at_threshold_and_blocks():
    q = WidgetQuarantine(threshold=3)
    assert not q.record("btn_flaky", "hang")
    assert not q.record("btn_flaky", "hang")
    assert q.record("btn_flaky", "crash")  # third strike trips
    assert q.blocked("btn_flaky")
    assert q.blocked_ids() == ["btn_flaky"]
    assert len(q) == 1


def test_strikes_are_per_widget():
    q = WidgetQuarantine(threshold=2)
    q.record("a", "hang")
    q.record("b", "hang")
    assert not q.blocked("a") and not q.blocked("b")
    assert q.record("a", "hang")
    assert q.blocked("a") and not q.blocked("b")
    assert q.strikes("a") == 2 and q.strikes("b") == 1


def test_reason_remembers_the_tripping_strike():
    q = WidgetQuarantine(threshold=1)
    q.record("w", "crash")
    assert q.reason("w") == "crash"
    assert q.reason("never-seen") == ""


def test_trip_reported_once():
    q = WidgetQuarantine(threshold=2)
    q.record("w", "hang")
    assert q.record("w", "hang")       # trips now
    assert not q.record("w", "hang")   # already tripped: not a new trip
    assert q.strikes("w") == 3


def test_inactive_quarantine_never_blocks():
    q = WidgetQuarantine(threshold=1, active=False)
    for _ in range(5):
        assert not q.record("w", "hang")
    assert not q.blocked("w")
    assert q.blocked_ids() == []
