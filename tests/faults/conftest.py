"""Chaos-suite support: profile selection for the CI matrix.

The chaos-marked tests parametrize over all three fault profiles by
default; the CI chaos job sets ``CHAOS_PROFILE`` to pin each matrix leg
to one profile.
"""

from __future__ import annotations

import os
from typing import List


def chaos_profiles() -> List[str]:
    env = os.environ.get("CHAOS_PROFILE")
    return [env] if env else ["none", "mild", "hostile"]
