"""RetryPolicy: bounded attempts, backoff schedule, simulated clock."""

import random

import pytest

from repro.errors import TestCaseError, TransientAdbError
from repro.faults import RetryPolicy, RetryStats, SimulatedClock


def _flaky(failures):
    """A thunk failing transiently ``failures`` times, then succeeding."""
    state = {"left": failures}

    def fn():
        if state["left"] > 0:
            state["left"] -= 1
            raise TransientAdbError("flake")
        return "ok"

    return fn


def test_recovers_within_budget_and_counts():
    stats = RetryStats()
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=4, jitter=0.0)
    result = policy.call(_flaky(2), clock=clock, stats=stats)
    assert result == "ok"
    assert stats.retries == 2 and stats.recoveries == 1
    assert stats.giveups == 0
    assert clock.now == pytest.approx(stats.backoff_s)


def test_gives_up_after_max_attempts():
    stats = RetryStats()
    policy = RetryPolicy(max_attempts=3, jitter=0.0)
    with pytest.raises(TransientAdbError):
        policy.call(_flaky(99), clock=SimulatedClock(), stats=stats)
    assert stats.giveups == 1
    assert stats.retries == 2  # two backoffs before the third, final try


def test_non_transient_errors_are_not_retried():
    calls = []

    def fn():
        calls.append(1)
        raise TestCaseError("app bug")

    with pytest.raises(TestCaseError):
        RetryPolicy().call(fn, clock=SimulatedClock())
    assert len(calls) == 1


def test_backoff_is_exponential_and_capped():
    policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.5,
                         jitter=0.0)
    delays = [policy.delay_for(i) for i in range(5)]
    assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]


def test_jitter_is_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                         jitter=0.25)
    rng_a, rng_b = random.Random(7), random.Random(7)
    a = [policy.delay_for(i, rng_a) for i in range(10)]
    b = [policy.delay_for(i, rng_b) for i in range(10)]
    assert a == b
    assert all(0.75 <= d <= 1.25 for d in a)
    assert len(set(a)) > 1  # it actually jitters


def test_on_retry_hook_sees_each_transient_failure():
    seen = []
    policy = RetryPolicy(max_attempts=4, jitter=0.0)
    policy.call(_flaky(2), clock=SimulatedClock(),
                on_retry=lambda exc: seen.append(type(exc).__name__))
    assert seen == ["TransientAdbError", "TransientAdbError"]


def test_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


# ---------------------------------------------------------------------------
# The total-deadline budget
# ---------------------------------------------------------------------------

def test_max_total_delay_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_total_delay=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(max_total_delay=-1.0)
    assert RetryPolicy(max_total_delay=None).max_total_delay is None


def test_delay_for_clamps_to_the_remaining_budget():
    policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=1.0,
                         jitter=0.0, max_total_delay=1.5)
    assert policy.delay_for(0, elapsed=0.0) == 1.0
    assert policy.delay_for(1, elapsed=1.0) == 0.5
    assert policy.delay_for(2, elapsed=1.5) == 0.0
    assert policy.delay_for(2, elapsed=99.0) == 0.0  # never negative


def test_call_gives_up_once_the_budget_is_spent():
    """Attempts remain, but the total-backoff deadline is the harder
    bound: the next transient failure after it re-raises."""
    stats = RetryStats()
    clock = SimulatedClock()
    policy = RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=1.0,
                         max_delay=1.0, jitter=0.0, max_total_delay=2.0)
    with pytest.raises(TransientAdbError):
        policy.call(_flaky(99), clock=clock, stats=stats)
    assert stats.giveups == 1
    # Two full sleeps spend the 2.0s budget; the third failure gives up.
    assert stats.retries == 2
    assert clock.now == pytest.approx(2.0)
    assert clock.now <= policy.max_total_delay


def test_budget_does_not_interfere_with_quick_recoveries():
    stats = RetryStats()
    policy = RetryPolicy(max_attempts=5, jitter=0.0, max_total_delay=60.0)
    assert policy.call(_flaky(2), clock=SimulatedClock(),
                       stats=stats) == "ok"
    assert stats.recoveries == 1 and stats.giveups == 0


def test_simulated_clock_jumps_instead_of_waiting():
    clock = SimulatedClock()
    clock.sleep(2.5)
    clock.sleep(0.5)
    assert clock.now == 3.0
