"""FaultPlan: profiles, validation, deterministic injector streams."""

import pytest

from repro.faults import FAULT_PROFILES, FaultInjector, FaultPlan, fault_plan


def _adb_stream(plan, scope, n=50):
    injector = plan.injector(scope)
    return [injector.adb_fault() for _ in range(n)]


def test_named_profiles_exist_and_order_by_severity():
    assert set(FAULT_PROFILES) == {"none", "mild", "hostile"}
    none, mild, hostile = (FAULT_PROFILES[p]
                           for p in ("none", "mild", "hostile"))
    assert not none.enabled
    assert mild.enabled and hostile.enabled
    for name, mild_rate in mild.rates().items():
        assert getattr(hostile, name) >= mild_rate


def test_fault_plan_reseeds_named_profile():
    plan = fault_plan("mild", seed=99)
    assert plan.seed == 99 and plan.profile == "mild"
    assert plan.rates() == FAULT_PROFILES["mild"].rates()


def test_unknown_profile_rejected():
    with pytest.raises(ValueError, match="unknown fault profile"):
        fault_plan("brutal")


@pytest.mark.parametrize("rate", [-0.1, 1.5])
def test_rates_must_be_probabilities(rate):
    with pytest.raises(ValueError, match="probability"):
        FaultPlan(adb_transient_rate=rate)


def test_injector_streams_are_deterministic_per_scope():
    plan = fault_plan("hostile", seed=5)
    assert _adb_stream(plan, "com.a") == _adb_stream(plan, "com.a")
    assert _adb_stream(plan, "com.a") != _adb_stream(plan, "com.b")


def test_seed_changes_the_stream():
    assert (_adb_stream(fault_plan("hostile", seed=1), "x", 100)
            != _adb_stream(fault_plan("hostile", seed=2), "x", 100))


def test_injector_tallies_what_it_injects():
    injector = FaultInjector(fault_plan("hostile", seed=3), scope="x")
    kinds = [injector.adb_fault() for _ in range(200)]
    kinds += [injector.click_fault() for _ in range(200)]
    injected = [k for k in kinds if k is not None]
    assert injected, "hostile profile must inject something in 400 draws"
    assert injector.total_injected == len(injected)
    for kind in set(injected):
        assert injector.injected[kind] == injected.count(kind)


def test_none_profile_draws_nothing():
    injector = fault_plan("none").injector("x")
    assert all(injector.adb_fault() is None for _ in range(50))
    assert all(injector.click_fault() is None for _ in range(50))
    assert injector.injected == {}
