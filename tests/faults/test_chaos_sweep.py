"""Table-I corpus sweeps under fault injection.

The acceptance bar: under the hostile profile with a fixed seed, a full
sweep completes with zero unhandled exceptions and every outcome
carries either a result or a classified fault.
"""

import pytest

from repro import FragDroidConfig
from repro.bench import explore_many, fault_census
from repro.corpus import TABLE1_PLANS
from tests.faults.conftest import chaos_profiles

KNOWN_FAULTS = {"adb-transient", "timeout", "disconnect", "crash",
                "packed-apk"}


def _sweep(profile, seed=42):
    config = FragDroidConfig(fault_profile=profile, fault_seed=seed)
    return explore_many(config=config)


@pytest.mark.chaos
@pytest.mark.parametrize("profile", chaos_profiles())
def test_sweep_completes_with_classified_outcomes(profile):
    outcomes = _sweep(profile)
    assert set(outcomes) == {p.package for p in TABLE1_PLANS}
    for outcome in outcomes.values():
        if outcome.ok:
            assert outcome.result is not None
        else:
            assert outcome.fault_kind in KNOWN_FAULTS, (
                f"{outcome.package}: unclassified {outcome.error!r}")


@pytest.mark.chaos
@pytest.mark.parametrize("profile", chaos_profiles())
def test_sweep_is_deterministic(profile):
    def digest(outcomes):
        return {p: (o.ok, o.fault_kind,
                    len(o.result.visited_activities) if o.ok else None)
                for p, o in sorted(outcomes.items())}

    assert digest(_sweep(profile, seed=5)) == digest(_sweep(profile, seed=5))


def test_fault_free_table1_sweep_is_fully_healthy():
    outcomes = _sweep("none")
    assert all(o.ok for o in outcomes.values())
    assert fault_census(outcomes) == {}


def test_fault_census_classifies_the_packed_apk():
    from repro.corpus.synth import AppPlan

    plans = [AppPlan(package="com.example.ok"),
             AppPlan(package="com.example.packed", packed=True)]
    outcomes = explore_many(plans)
    assert outcomes["com.example.ok"].ok
    packed = outcomes["com.example.packed"]
    assert not packed.ok and packed.fault_kind == "packed-apk"
    assert fault_census(outcomes) == {"packed-apk": 1}


def test_hostile_census_counts_every_failure():
    outcomes = _sweep("hostile")
    census = fault_census(outcomes)
    failures = sum(1 for o in outcomes.values() if not o.ok)
    assert sum(census.values()) == failures
    assert "other" not in census
