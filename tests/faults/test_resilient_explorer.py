"""End-to-end chaos runs: the explorer under each fault profile.

These carry the ``chaos`` marker so CI can run them per-profile
(``CHAOS_PROFILE=hostile pytest -m chaos``) while a plain test run
still covers all three profiles.
"""

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.core.report import result_to_json
from repro.faults import make_device
from tests.conftest import make_full_demo_spec
from tests.faults.conftest import chaos_profiles


def _explore(profile, seed=42):
    from repro.apk import build_apk

    config = FragDroidConfig(fault_profile=profile, fault_seed=seed)
    device = make_device(config.fault_plan, scope="demo")
    result = FragDroid(device, config).explore(
        build_apk(make_full_demo_spec()))
    return result


@pytest.mark.chaos
@pytest.mark.parametrize("profile", chaos_profiles())
def test_exploration_completes_under_profile(profile):
    result = _explore(profile)  # no unhandled exception, whatever fires
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    # Forced starts guarantee every exported Activity is at least
    # visited, even when organic navigation is disrupted by faults.
    assert {"MainActivity", "SecondActivity", "SettingsActivity",
            "AboutActivity"} <= simple


@pytest.mark.chaos
@pytest.mark.parametrize("profile", chaos_profiles())
def test_runs_are_deterministic_per_profile_and_seed(profile):
    assert (result_to_json(_explore(profile, seed=7))
            == result_to_json(_explore(profile, seed=7)))


@pytest.mark.chaos
@pytest.mark.parametrize("profile", chaos_profiles())
def test_degradation_section_matches_profile(profile):
    result = _explore(profile)
    if profile == "none":
        assert result.degradation is None
        assert "fault profile" not in result.coverage_report()
    else:
        deg = result.degradation
        assert deg is not None
        assert deg.profile == profile and deg.seed == 42
        # Whatever was injected is accounted for, not swallowed.
        assert deg.recoveries <= deg.retries
        assert f"fault profile: {profile}" in result.coverage_report()


def test_disabled_faults_output_byte_identical_to_plain_explorer():
    from repro.apk import build_apk

    plain = FragDroid(Device()).explore(build_apk(make_full_demo_spec()))
    assert result_to_json(_explore("none")) == result_to_json(plain)
    assert _explore("none").coverage_report() == plain.coverage_report()


def test_hostile_run_reports_faults_in_json():
    import json

    report = json.loads(result_to_json(_explore("hostile")))
    deg = report["degradation"]
    assert deg["profile"] == "hostile"
    assert deg["faults"], "a hostile run on the demo app must inject"
