"""The crash-safe job journal: atomic writes, tolerant reads."""

import json

import pytest

from repro.serve import JOB_SCHEMA, Job, JobJournal, default_journal_dir
from repro.serve.jobs import DONE, RUNNING

APPS = ["com.serve.demo.alpha", "com.serve.demo.beta"]


def test_write_then_load_round_trips(tmp_path):
    journal = JobJournal(tmp_path)
    job = Job(apps=list(APPS))
    job.completed[APPS[0]] = {"package": APPS[0], "ok": True}
    journal.write(job)
    assert journal.load(job.job_id).to_dict() == job.to_dict()


def test_write_is_atomic_no_temp_debris(tmp_path):
    journal = JobJournal(tmp_path)
    journal.write(Job(apps=list(APPS)))
    names = [p.name for p in tmp_path.iterdir()]
    assert len(names) == 1 and names[0].endswith(".json")
    assert not any(name.startswith(".tmp-") for name in names)


def test_rewrite_replaces_the_snapshot(tmp_path):
    journal = JobJournal(tmp_path)
    job = Job(apps=list(APPS))
    journal.write(job)
    job.state = RUNNING
    journal.write(job)
    assert journal.load(job.job_id).state == RUNNING
    assert len(list(tmp_path.glob("*.json"))) == 1


def test_corrupt_entries_are_skipped_with_a_warning(tmp_path):
    journal = JobJournal(tmp_path)
    good = Job(apps=list(APPS))
    journal.write(good)
    (tmp_path / "deadbeef0000.json").write_text("{ not json",
                                                encoding="utf-8")
    with pytest.warns(RuntimeWarning, match="deadbeef0000"):
        jobs = journal.jobs()
    assert [job.job_id for job in jobs] == [good.job_id]
    assert [name for name, _ in journal.skipped] == ["deadbeef0000.json"]


def test_foreign_schema_entries_are_skipped(tmp_path):
    journal = JobJournal(tmp_path)
    data = Job(apps=list(APPS)).to_dict()
    data["schema"] = JOB_SCHEMA + 1
    (tmp_path / "cafecafe0000.json").write_text(json.dumps(data),
                                               encoding="utf-8")
    with pytest.warns(RuntimeWarning, match="schema"):
        assert journal.jobs() == []


def test_in_flight_excludes_terminal_jobs(tmp_path):
    journal = JobJournal(tmp_path)
    running = Job(apps=list(APPS))
    running.state = RUNNING
    finished = Job(apps=list(APPS))
    finished.state = DONE
    journal.write(running)
    journal.write(finished)
    assert [job.job_id for job in journal.in_flight()] == [running.job_id]


def test_remove(tmp_path):
    journal = JobJournal(tmp_path)
    job = Job(apps=list(APPS))
    journal.write(job)
    assert journal.remove(job.job_id) is True
    assert journal.remove(job.job_id) is False
    assert journal.jobs() == []


def test_missing_directory_reads_as_empty(tmp_path):
    assert JobJournal(tmp_path / "never-created").jobs() == []


def test_default_dir_honors_env(monkeypatch, tmp_path):
    monkeypatch.setenv("FRAGDROID_SERVE_DIR", str(tmp_path / "j"))
    assert default_journal_dir() == tmp_path / "j"
    monkeypatch.delenv("FRAGDROID_SERVE_DIR")
    assert default_journal_dir().name == "serve"
