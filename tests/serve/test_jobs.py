"""The job model and the admission-controlled queue."""

import pytest

from repro.errors import (
    AdmissionError,
    JobBudgetError,
    JobStateError,
    QueueFullError,
    UnknownJobError,
)
from repro.obs.metrics import Metrics
from repro.serve import (
    ADMITTED,
    CANCELLED,
    DONE,
    JOB_SCHEMA,
    RUNNING,
    Job,
    JobLimits,
    JobQueue,
)

APPS = ["com.serve.demo.alpha", "com.serve.demo.beta"]


# ---------------------------------------------------------------------------
# Limits
# ---------------------------------------------------------------------------

def test_limits_reject_nonsense():
    with pytest.raises(ValueError):
        JobLimits(queue_depth=0)
    with pytest.raises(ValueError):
        JobLimits(max_apps=-1)
    with pytest.raises(ValueError):
        JobLimits(max_events_cap=True)
    with pytest.raises(ValueError):
        JobLimits(max_time_budget_s=0.0)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

def test_submit_admits_and_counts():
    metrics = Metrics()
    queue = JobQueue(metrics=metrics)
    job = queue.submit(Job(apps=list(APPS)))
    assert job.state == ADMITTED
    assert queue.depth() == 1
    assert metrics.counter("serve.admitted") == 1
    assert queue.get(job.job_id) is job


@pytest.mark.parametrize("kwargs", [
    {"apps": []},
    {"apps": APPS, "max_events": 0},
    {"apps": APPS, "max_events": 10**9},
    {"apps": APPS, "time_budget_s": 0.0},
    {"apps": APPS, "time_budget_s": 10**9},
    {"apps": APPS, "workers": 0},
])
def test_budget_violations_are_typed_and_counted(kwargs):
    metrics = Metrics()
    queue = JobQueue(metrics=metrics)
    with pytest.raises(JobBudgetError):
        queue.submit(Job(**kwargs))
    assert metrics.counter("serve.rejected.budget") == 1
    assert queue.depth() == 0


def test_bad_backend_and_duplicates_rejected():
    queue = JobQueue()
    with pytest.raises(AdmissionError):
        queue.submit(Job(apps=list(APPS), backend="fiber"))
    with pytest.raises(AdmissionError):
        queue.submit(Job(apps=["com.a", "com.a"]))


def test_too_many_apps_rejected():
    queue = JobQueue(JobLimits(max_apps=2))
    with pytest.raises(JobBudgetError):
        queue.submit(Job(apps=["com.a", "com.b", "com.c"]))


def test_full_queue_applies_backpressure():
    metrics = Metrics()
    queue = JobQueue(JobLimits(queue_depth=2), metrics=metrics)
    queue.submit(Job(apps=list(APPS)))
    queue.submit(Job(apps=list(APPS)))
    with pytest.raises(QueueFullError):
        queue.submit(Job(apps=list(APPS)))
    assert metrics.counter("serve.rejected.queue_full") == 1
    # The bound held: nothing was queued past it.
    assert queue.depth() == 2


def test_draining_a_slot_readmits():
    queue = JobQueue(JobLimits(queue_depth=1))
    first = queue.submit(Job(apps=list(APPS)))
    with pytest.raises(QueueFullError):
        queue.submit(Job(apps=list(APPS)))
    assert queue.next_job() is first
    queue.submit(Job(apps=list(APPS)))  # a slot freed up


# ---------------------------------------------------------------------------
# Draining and cancellation
# ---------------------------------------------------------------------------

def test_next_job_is_fifo_and_skips_cancelled():
    queue = JobQueue()
    first = queue.submit(Job(apps=list(APPS)))
    second = queue.submit(Job(apps=list(APPS)))
    queue.cancel(first.job_id)
    assert first.state == CANCELLED
    assert first.error == "cancelled before start"
    assert queue.depth() == 1  # the cancelled job freed its slot
    assert queue.next_job() is second
    assert queue.next_job() is None


def test_cancel_running_is_cooperative():
    queue = JobQueue()
    job = queue.submit(Job(apps=list(APPS)))
    job.state = RUNNING
    cancelled = queue.cancel(job.job_id)
    assert cancelled.state == RUNNING
    assert cancelled.cancel_requested is True


def test_cancel_terminal_conflicts():
    queue = JobQueue()
    job = queue.submit(Job(apps=list(APPS)))
    job.state = DONE
    with pytest.raises(JobStateError):
        queue.cancel(job.job_id)


def test_unknown_job_is_typed():
    queue = JobQueue()
    with pytest.raises(UnknownJobError):
        queue.get("feedfacecafe")
    with pytest.raises(UnknownJobError):
        queue.cancel("feedfacecafe")


def test_counts_by_state():
    queue = JobQueue()
    queue.submit(Job(apps=list(APPS)))
    done = queue.submit(Job(apps=list(APPS)))
    done.state = DONE
    counts = queue.counts()
    assert counts["admitted"] == 1 and counts["done"] == 1


# ---------------------------------------------------------------------------
# Serialization
# ---------------------------------------------------------------------------

def test_job_round_trips_through_dict():
    job = Job(apps=list(APPS), backend="process", workers=2,
              fault_profile="mild", fault_seed=9)
    job.state = RUNNING
    job.completed["com.serve.demo.alpha"] = {"package": APPS[0], "ok": True}
    job.attempts["com.serve.demo.beta"] = 1
    clone = Job.from_dict(job.to_dict())
    assert clone.to_dict() == job.to_dict()
    assert clone.remaining() == ["com.serve.demo.beta"]


def test_schema_v2_carries_the_trace_id():
    job = Job(apps=list(APPS), trace_id=314)
    data = job.to_dict()
    assert data["schema"] == JOB_SCHEMA == 2
    assert data["trace_id"] == 314
    assert Job.from_dict(data).trace_id == 314
    # trace_id is optional in the record: absent means untraced.
    del data["trace_id"]
    assert Job.from_dict(data).trace_id == 0


def test_foreign_schema_is_refused():
    data = Job(apps=list(APPS)).to_dict()
    data["schema"] = JOB_SCHEMA + 1
    with pytest.raises(ValueError):
        Job.from_dict(data)


def test_unknown_state_is_refused():
    data = Job(apps=list(APPS)).to_dict()
    data["state"] = "exploded"
    with pytest.raises(ValueError):
        Job.from_dict(data)


def test_degradation_accounts_for_adversity():
    job = Job(apps=list(APPS))
    job.attempts = {"com.serve.demo.alpha": 2}
    job.quarantined = ["com.serve.demo.alpha"]
    job.completed["com.serve.demo.alpha"] = {"ok": False,
                                             "fault_kind": "worker-died"}
    account = job.degradation()
    assert account["worker_deaths"] == 2
    assert account["quarantined_apps"] == ["com.serve.demo.alpha"]
    assert account["failed_apps"] == ["com.serve.demo.alpha"]


# ---------------------------------------------------------------------------
# Restart recovery
# ---------------------------------------------------------------------------

def test_restore_readmits_in_flight_jobs():
    queue = JobQueue()
    interrupted = Job(apps=list(APPS))
    interrupted.state = RUNNING
    interrupted.completed[APPS[0]] = {"package": APPS[0], "ok": True}
    queue.restore(interrupted)
    assert interrupted.state == ADMITTED
    assert queue.next_job() is interrupted
    # Completed work rides along: only the second app remains.
    assert interrupted.remaining() == [APPS[1]]


def test_restore_keeps_terminal_jobs_out_of_the_queue():
    queue = JobQueue()
    finished = Job(apps=list(APPS))
    finished.state = DONE
    queue.restore(finished)
    assert queue.next_job() is None
    assert queue.get(finished.job_id) is finished
