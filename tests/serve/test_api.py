"""The HTTP/JSON front door, end to end over a real socket."""

import threading

import pytest

from repro.bench.parallel import explore_many
from repro.obs.registry import RunRegistry
from repro.serve import JobLimits, ReproServer, ServeClient, ServeClientError

ALPHA = "com.serve.demo.alpha"
BETA = "com.serve.demo.beta"


@pytest.fixture
def server(tmp_path):
    instance = ReproServer(journal_dir=tmp_path / "journal",
                           registry_dir=tmp_path / "runs", port=0)
    instance.start()
    yield instance
    instance.stop(timeout=2.0)


@pytest.fixture
def client(server):
    return ServeClient(server.url, timeout_s=10.0)


def test_submit_runs_to_done_and_lands_in_registry(server, client):
    job = client.submit([ALPHA, BETA], max_events=200)
    assert job["state"] in ("admitted", "running")
    done = client.wait(job["job_id"], timeout_s=60.0)
    assert done["state"] == "done"
    assert sorted(done["completed"]) == [ALPHA, BETA]
    assert all(row["ok"] for row in done["completed"].values())

    records = RunRegistry(server.registry.directory).list()
    assert len(records) == 1
    assert records[0].run_id == done["run_id"]
    assert records[0].meta["job_id"] == job["job_id"]

    events = client.logs(job["job_id"])
    kinds = {event["kind"] for event in events}
    assert "job.state" in kinds and "job.app.done" in kinds

    health = client.health()
    assert health["ok"] is True
    assert health["jobs"]["done"] == 1
    assert client.metrics()["counters"]["serve.admitted"] == 1
    assert any(row["job_id"] == job["job_id"] for row in client.jobs())


def test_error_statuses_are_typed(client):
    with pytest.raises(ServeClientError) as excinfo:
        client.submit([ALPHA], bogus_knob=3)
    assert excinfo.value.status == 400
    assert excinfo.value.kind == "AdmissionError"

    with pytest.raises(ServeClientError) as excinfo:
        client.submit(["com.not.a.known.app"])
    assert excinfo.value.status == 400

    with pytest.raises(ServeClientError) as excinfo:
        client.submit([ALPHA], max_events=10**9)
    assert excinfo.value.status == 400
    assert excinfo.value.kind == "JobBudgetError"

    with pytest.raises(ServeClientError) as excinfo:
        client.job("feedfacecafe")
    assert excinfo.value.status == 404
    assert excinfo.value.kind == "UnknownJobError"


def test_cancel_done_job_conflicts(client):
    job = client.submit([ALPHA], max_events=200)
    done = client.wait(job["job_id"], timeout_s=60.0)
    with pytest.raises(ServeClientError) as excinfo:
        client.cancel(done["job_id"])
    assert excinfo.value.status == 409
    assert excinfo.value.kind == "JobStateError"


def test_unreachable_service_reports_transport_failure():
    client = ServeClient("http://127.0.0.1:1", timeout_s=2.0)
    with pytest.raises(ServeClientError) as excinfo:
        client.health()
    assert excinfo.value.status == 0
    assert "repro serve" in str(excinfo.value)


def test_full_queue_returns_429_and_cancel_drains(tmp_path):
    """Backpressure over the wire: a held scheduler, a bounded queue,
    a typed 429 — then cancelling the queued job frees the slot."""
    gate = threading.Event()

    def held_sweep(plans, config=None, max_workers=None, backend=None):
        gate.wait(30.0)
        return explore_many(plans, config=config, max_workers=1,
                            backend="thread")

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0,
                         limits=JobLimits(queue_depth=1),
                         sweep_fn=held_sweep)
    server.start()
    try:
        client = ServeClient(server.url, timeout_s=10.0)
        running = client.submit([ALPHA], max_events=200)
        # Wait for the scheduler to pick it up and block in the sweep.
        for _ in range(200):
            if client.job(running["job_id"])["state"] == "running":
                break
            threading.Event().wait(0.02)
        queued = client.submit([BETA], max_events=200)
        with pytest.raises(ServeClientError) as excinfo:
            client.submit([BETA], max_events=200)
        assert excinfo.value.status == 429
        assert excinfo.value.kind == "QueueFullError"
        assert client.metrics()["counters"]["serve.rejected.queue_full"] == 1

        cancelled = client.cancel(queued["job_id"])
        assert cancelled["state"] == "cancelled"
        client.submit([BETA], max_events=200)  # the slot is free again

        gate.set()
        assert client.wait(running["job_id"], timeout_s=60.0)["state"] \
            == "done"
    finally:
        gate.set()
        server.stop(timeout=2.0)


def test_restart_resumes_journaled_jobs(tmp_path):
    """The restart story over the full stack: a service that dies with
    a running job comes back, resumes it from the journal, and does
    not re-analyze the journaled apps."""
    from repro.serve import Job, JobJournal

    interrupted = Job(apps=[ALPHA, BETA], max_events=200)
    interrupted.state = "running"
    interrupted.completed[ALPHA] = {"package": ALPHA, "ok": True}
    JobJournal(tmp_path / "journal").write(interrupted)

    swept = []

    def recording_sweep(plans, config=None, max_workers=None,
                        backend=None):
        swept.extend(plan.package for plan in plans)
        return explore_many(plans, config=config, max_workers=1,
                            backend="thread")

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0,
                         sweep_fn=recording_sweep)
    server.start()
    try:
        assert server.resumed == 1
        client = ServeClient(server.url, timeout_s=10.0)
        done = client.wait(interrupted.job_id, timeout_s=60.0)
        assert done["state"] == "done"
        assert swept == [BETA]  # the journaled app was not re-analyzed
    finally:
        server.stop(timeout=2.0)


def test_metrics_content_negotiation(server, client):
    job = client.submit([ALPHA], max_events=200)
    client.wait(job["job_id"], timeout_s=60.0)

    # JSON stays the default shape, now with quantile summaries.
    snapshot = client.metrics()
    waits = snapshot["histograms"]["serve.queue.wait_s"]
    assert waits["count"] >= 1
    assert set(waits) >= {"count", "total", "min", "max",
                          "mean", "p50", "p90", "p99"}
    assert "serve.job.run_s" in snapshot["histograms"]
    assert "serve.job.start_s" in snapshot["histograms"]

    # ?format=prometheus (or Accept: text/plain) switches exposition.
    text = client.metrics_prometheus()
    assert "# TYPE fragdroid_serve_admitted_total counter" in text
    assert "# TYPE fragdroid_serve_queue_wait_s summary" in text
    assert 'fragdroid_serve_queue_wait_s{quantile="0.99"}' in text
    assert "fragdroid_serve_job_run_s_count 1" in text


def test_job_trace_correlates_across_the_process_boundary(server, client):
    """The tentpole end to end: one job submitted over HTTP against the
    process backend yields ONE trace — the submit root, the recorded
    queue wait, the scheduler rounds and the absorbed worker spans all
    under the trace id the job carries."""
    job = client.submit([ALPHA, BETA], max_events=200,
                        backend="process", workers=2)
    done = client.wait(job["job_id"], timeout_s=120.0)
    assert done["state"] == "done"
    trace_id = done["trace_id"]
    assert trace_id > 0

    spans = server.tracer.spans_in_trace(trace_id)
    names = {span.name for span in spans}
    assert {"job.submit", "queue.wait", "job.run",
            "schedule.round", "sweep.app"} <= names
    # Both workers' app spans (and their children) were re-homed.
    apps = {span.attributes.get("app") for span in spans
            if span.name == "sweep.app"}
    assert apps == {ALPHA, BETA}
    assert sum(1 for span in spans if span.depth > 0) > 0


def test_sse_stream_follows_a_job_to_completion(server, client):
    job = client.submit([ALPHA], max_events=200)
    events = list(client.stream_events(job["job_id"], timeout_s=30.0))
    kinds = [event["kind"] for event in events]
    assert "job.state" in kinds
    assert "job.round" in kinds
    assert "job.app.done" in kinds
    states = [event["attributes"]["state"] for event in events
              if event["kind"] == "job.state"]
    assert states[-1] == "done"
    # No duplicate delivery across the backlog/live seam.
    seqs = [event["seq"] for event in events]
    assert seqs == sorted(set(seqs))
    # The handler detached its subscription on the way out.
    for _ in range(100):
        if server.broker.subscriber_count() == 0:
            break
        threading.Event().wait(0.02)
    assert server.broker.subscriber_count() == 0


def test_sse_stream_replays_the_backlog_of_a_finished_job(server, client):
    job = client.submit([ALPHA], max_events=200)
    client.wait(job["job_id"], timeout_s=60.0)
    events = list(client.stream_events(job["job_id"], timeout_s=10.0))
    assert events, "a finished job still streams its backlog"
    assert events[-1]["attributes"].get("state") == "done"
    assert server.broker.subscriber_count() == 0


def test_sse_stream_of_unknown_job_is_a_404(client):
    with pytest.raises(ServeClientError) as excinfo:
        next(client.stream_events("feedfacecafe"))
    assert excinfo.value.status == 404


def test_disconnecting_sse_client_is_cleaned_up(server, client):
    """A client that walks away mid-stream must not leak its
    subscription (the bounded buffer dies with it)."""
    import urllib.request

    gate = threading.Event()
    original = server.scheduler.sweep_fn

    def held_sweep(plans, **kwargs):
        gate.wait(30.0)
        return original(plans, **kwargs)

    server.scheduler.sweep_fn = held_sweep
    try:
        job = client.submit([ALPHA], max_events=200)
        response = urllib.request.urlopen(
            server.url + f"/jobs/{job['job_id']}/events", timeout=10.0)
        response.readline()  # the stream is live
        for _ in range(100):
            if server.broker.subscriber_count() == 1:
                break
            threading.Event().wait(0.02)
        assert server.broker.subscriber_count() == 1
        response.close()  # hang up without reading to the end
        gate.set()
        client.wait(job["job_id"], timeout_s=60.0)
        for _ in range(200):
            if server.broker.subscriber_count() == 0:
                break
            threading.Event().wait(0.02)
        assert server.broker.subscriber_count() == 0
    finally:
        gate.set()
        server.scheduler.sweep_fn = original


def test_shutdown_endpoint_stops_the_service(tmp_path):
    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0)
    server.start()
    client = ServeClient(server.url, timeout_s=10.0)
    assert client.shutdown()["ok"] is True
    for _ in range(100):
        try:
            client.health()
        except ServeClientError:
            break
        threading.Event().wait(0.05)
    else:
        pytest.fail("service still answering after /shutdown")


def test_job_explanation_is_served_once_terminal(server, client):
    job = client.submit([ALPHA], max_events=200)
    done = client.wait(job["job_id"], timeout_s=60.0)
    assert done["state"] == "done"
    explanation = client.explanation(job["job_id"])
    assert explanation["schema"] == 1
    assert explanation["source_run_id"] == done["run_id"]
    assert [row["package"] for row in explanation["apps"]] == [ALPHA]
    assert "unclassified" not in explanation["cause_census"]
    assert explanation["meta"]["job_id"] == job["job_id"]

    with pytest.raises(ServeClientError) as excinfo:
        client.explanation("0" * 12)
    assert excinfo.value.status == 404


def test_job_explanation_before_any_run_is_a_409(tmp_path):
    from repro.errors import JobStateError
    from repro.serve import Job

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0)
    # The scheduler never starts, so the job stays queued: asking for
    # its explanation is a typed state error (HTTP 409 over the wire).
    job = Job(apps=[ALPHA], max_events=200)
    server.queue.submit(job)
    with pytest.raises(JobStateError, match="no recorded run"):
        server.job_explanation(job.job_id)
