"""The supervised scheduler: recovery, watchdog, journaling, registry.

The unit tests script worker deaths through a fake ``sweep_fn``; the
integration test at the bottom kills real pool processes via the chaos
hook in ``bench.parallel`` and checks the service-level guarantee: a
transiently killed worker costs nothing but a re-admission, and the
surviving apps' rows match a fault-free run exactly.
"""

import threading

import pytest

from repro.bench.parallel import SweepOutcome, explore_many
from repro.errors import WorkerDiedError
from repro.obs import EventLog, Tracer
from repro.obs.registry import RunRegistry
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    Job,
    JobJournal,
    JobQueue,
    Scheduler,
)

ALPHA = "com.serve.demo.alpha"
BETA = "com.serve.demo.beta"
GAMMA = "com.serve.demo.gamma"
DEMO_APPS = [ALPHA, BETA, GAMMA]


def scripted_sweep(deaths):
    """A sweep that kills the named packages' workers first.

    ``deaths[package]`` is how many rounds the package fails with a
    worker death before exploring for real; ``-1`` means every round.
    ``sweep.calls`` records each call's package list, so tests can
    assert what was (and was not) re-analyzed.
    """
    budget = dict(deaths)
    calls = []

    def sweep(plans, config=None, max_workers=None, backend=None):
        calls.append([plan.package for plan in plans])
        outcomes = {}
        healthy = []
        for plan in plans:
            left = budget.get(plan.package, 0)
            if left:
                if left > 0:
                    budget[plan.package] = left - 1
                outcomes[plan.package] = SweepOutcome(
                    package=plan.package,
                    error=WorkerDiedError("scripted worker death"),
                    fault_kind="worker-died")
            else:
                healthy.append(plan)
        if healthy:
            outcomes.update(explore_many(healthy, config=config,
                                         max_workers=1, backend="thread"))
        return outcomes

    sweep.calls = calls
    return sweep


def make_scheduler(tmp_path, sweep_fn=explore_many, max_restarts=2,
                   **kwargs):
    tracer = Tracer()
    scheduler = Scheduler(
        queue=JobQueue(metrics=tracer.metrics),
        journal=JobJournal(tmp_path / "journal"),
        registry=RunRegistry(tmp_path / "runs"),
        sweep_fn=sweep_fn,
        max_restarts=max_restarts,
        tracer=tracer,
        event_log=EventLog(),
        **kwargs,
    )
    return scheduler


def submit_demo_job(scheduler, **kwargs):
    job = Job(apps=list(DEMO_APPS), max_events=200, **kwargs)
    scheduler.queue.submit(job)
    return job


def _rows_sans_duration(job):
    return {package: {key: value for key, value in row.items()
                      if key != "duration_s"}
            for package, row in job.completed.items()}


# ---------------------------------------------------------------------------
# The happy path
# ---------------------------------------------------------------------------

def test_job_trace_id_correlates_the_whole_lifecycle(tmp_path):
    """A job carrying a trace id yields one trace: the recorded queue
    wait, the job.run root, the per-round spans and the worker spans
    (thread backend: bound live via trace_span)."""
    scheduler = make_scheduler(tmp_path)
    job = submit_demo_job(scheduler, trace_id=4242)
    scheduler.run_job(job)
    assert job.state == DONE

    spans = scheduler.tracer.spans_in_trace(4242)
    names = {span.name for span in spans}
    assert {"queue.wait", "job.run", "schedule.round",
            "sweep.app"} <= names
    wait = next(span for span in spans if span.name == "queue.wait")
    assert wait.attributes["job"] == job.job_id
    assert wait.duration >= 0.0
    # schedule.round nests under job.run on the scheduler thread;
    # worker spans run on pool threads, so they join the trace as
    # additional roots (that is what trace_span is for).
    rounds = [span for span in spans if span.name == "schedule.round"]
    job_run = next(span for span in spans if span.name == "job.run")
    assert all(span.parent_id == job_run.span_id for span in rounds)
    roots = {span.name for span in spans if span.parent_id is None}
    assert roots == {"queue.wait", "job.run", "sweep.app"}

    histograms = scheduler.tracer.metrics.snapshot()["histograms"]
    assert histograms["serve.queue.wait_s"]["count"] == 1
    assert histograms["serve.job.start_s"]["count"] == 1
    assert histograms["serve.job.run_s"]["count"] == 1


def test_untraced_job_still_runs_with_local_spans(tmp_path):
    """trace_id 0 (a job submitted straight to the queue, no HTTP
    front door) degrades cleanly: spans exist, each rooted normally."""
    scheduler = make_scheduler(tmp_path)
    job = submit_demo_job(scheduler)
    assert job.trace_id == 0
    scheduler.run_job(job)
    assert job.state == DONE
    names = {span.name for span in scheduler.tracer.finished_spans()}
    assert {"queue.wait", "job.run", "schedule.round"} <= names


def test_retry_rounds_observe_the_delay_histogram(tmp_path):
    scheduler = make_scheduler(tmp_path, sweep_fn=scripted_sweep({ALPHA: 1}))
    job = submit_demo_job(scheduler)
    scheduler.run_job(job)
    assert job.state == DONE
    histograms = scheduler.tracer.metrics.snapshot()["histograms"]
    assert histograms["serve.retry.delay_s"]["count"] == 1


def test_clean_job_completes_and_lands_in_registry(tmp_path):
    scheduler = make_scheduler(tmp_path)
    job = submit_demo_job(scheduler)
    scheduler.run_job(job)
    assert job.state == DONE and job.error == ""
    assert sorted(job.completed) == sorted(DEMO_APPS)
    assert all(row["ok"] for row in job.completed.values())
    assert job.degradation()["worker_deaths"] == 0

    records = scheduler.registry.list()
    assert len(records) == 1 and job.run_id == records[0].run_id
    record = records[0]
    assert record.meta["job_id"] == job.job_id
    assert record.meta["state"] == "done"
    assert len(record.apps) == len(DEMO_APPS)
    # The journal holds the terminal snapshot.
    assert scheduler.journal.load(job.job_id).state == DONE


# ---------------------------------------------------------------------------
# Worker-death recovery
# ---------------------------------------------------------------------------

def test_worker_death_readmits_until_recovery(tmp_path):
    sweep = scripted_sweep({BETA: 1})
    scheduler = make_scheduler(tmp_path, sweep_fn=sweep)
    job = submit_demo_job(scheduler)
    scheduler.run_job(job)
    assert job.state == DONE
    assert all(row["ok"] for row in job.completed.values())
    assert job.attempts == {BETA: 1}
    counters = scheduler.tracer.metrics.counters()
    assert counters["serve.worker.deaths"] == 1
    assert counters["serve.readmitted"] == 1
    kinds = {event.kind for event in scheduler.event_log.events(app=BETA)}
    assert {"job.worker.died", "job.readmitted"} <= kinds


def test_readmitted_apps_run_isolated(tmp_path):
    """Re-admission rounds sweep one app per pool, so one poison app
    cannot take another re-admitted app's retry down with it."""
    sweep = scripted_sweep({ALPHA: 1, BETA: 1})
    scheduler = make_scheduler(tmp_path, sweep_fn=sweep)
    job = submit_demo_job(scheduler)
    scheduler.run_job(job)
    assert job.state == DONE
    assert sweep.calls[0] == DEMO_APPS
    assert sorted(map(tuple, sweep.calls[1:])) == [(ALPHA,), (BETA,)]


def test_requeue_is_bounded_and_quarantines(tmp_path):
    sweep = scripted_sweep({BETA: -1})
    scheduler = make_scheduler(tmp_path, sweep_fn=sweep, max_restarts=2)
    job = submit_demo_job(scheduler)
    scheduler.run_job(job)
    # The job itself completes: the poison app is never dropped, it is
    # recorded as a failed row after max_restarts re-admissions.
    assert job.state == DONE
    beta_sweeps = sum(1 for call in sweep.calls if BETA in call)
    assert beta_sweeps == 3  # the first run + max_restarts re-admissions
    row = job.completed[BETA]
    assert row["ok"] is False and row["fault_kind"] == "worker-died"
    assert job.quarantined == [BETA]
    account = job.degradation()
    assert account["quarantined_apps"] == [BETA]
    assert account["failed_apps"] == [BETA]
    counters = scheduler.tracer.metrics.counters()
    assert counters["serve.worker.deaths"] == 3
    assert counters["serve.readmitted"] == 2
    assert counters["serve.quarantined"] == 1
    # The degradation account rides into the registry record.
    record = scheduler.registry.load(job.run_id)
    assert record.meta["degradation"]["quarantined_apps"] == [BETA]


def test_survivors_match_a_fault_free_run(tmp_path):
    clean = make_scheduler(tmp_path / "clean")
    clean_job = submit_demo_job(clean)
    clean.run_job(clean_job)

    dirty = make_scheduler(tmp_path / "dirty",
                           sweep_fn=scripted_sweep({BETA: -1}))
    dirty_job = submit_demo_job(dirty)
    dirty.run_job(dirty_job)

    clean_rows = _rows_sans_duration(clean_job)
    dirty_rows = _rows_sans_duration(dirty_job)
    for package in (ALPHA, GAMMA):
        assert dirty_rows[package] == clean_rows[package]


# ---------------------------------------------------------------------------
# The watchdog and the time budget
# ---------------------------------------------------------------------------

def test_watchdog_fails_hung_sweeps(tmp_path):
    def hung_sweep(plans, config=None, max_workers=None, backend=None):
        threading.Event().wait(30.0)

    scheduler = make_scheduler(tmp_path, sweep_fn=hung_sweep)
    job = submit_demo_job(scheduler, time_budget_s=0.3)
    scheduler.run_job(job)
    assert job.state == FAILED
    assert "watchdog" in job.error
    # Nothing is dropped silently: every app has an explicit row.
    assert sorted(job.completed) == sorted(DEMO_APPS)
    assert all(row["fault_kind"] == "hung"
               for row in job.completed.values())
    assert scheduler.tracer.metrics.counter("serve.watchdog.hung") == 1
    # A failed job still lands in the registry, degradation and all.
    assert scheduler.registry.load(job.run_id).meta["state"] == "failed"


def test_exhausted_budget_records_timeout_rows(tmp_path):
    ticks = iter([0.0, 100.0, 200.0, 300.0, 400.0])
    scheduler = make_scheduler(tmp_path, wall=lambda: next(ticks))
    job = submit_demo_job(scheduler, time_budget_s=5.0)
    scheduler.run_job(job)
    assert job.state == FAILED
    assert "time budget" in job.error
    assert all(row["fault_kind"] == "timeout"
               for row in job.completed.values())


# ---------------------------------------------------------------------------
# Cancellation and supervisor resilience
# ---------------------------------------------------------------------------

def test_cancel_between_rounds(tmp_path):
    def sweep(plans, config=None, max_workers=None, backend=None):
        job.cancel_requested = True  # a client cancel lands mid-round
        return {plan.package: SweepOutcome(
            package=plan.package,
            error=WorkerDiedError("died"),
            fault_kind="worker-died") for plan in plans}

    scheduler = make_scheduler(tmp_path, sweep_fn=sweep)
    job = submit_demo_job(scheduler)
    scheduler.run_job(job)
    assert job.state == CANCELLED
    # Cancelled jobs never become registry records.
    assert job.run_id == "" and scheduler.registry.list() == []


def test_a_crashing_job_never_kills_the_service(tmp_path):
    def broken_sweep(plans, config=None, max_workers=None, backend=None):
        raise RuntimeError("scheduler bug")

    scheduler = make_scheduler(tmp_path, sweep_fn=broken_sweep)
    job = submit_demo_job(scheduler)
    stop = threading.Event()
    thread = threading.Thread(target=scheduler.run_forever, args=(stop,),
                              daemon=True)
    thread.start()
    try:
        for _ in range(200):
            if job.state == FAILED:
                break
            threading.Event().wait(0.02)
    finally:
        stop.set()
        thread.join(timeout=5.0)
    assert job.state == FAILED
    assert "scheduler failure" in job.error
    assert scheduler.tracer.metrics.counter("serve.job.crashed") == 1
    assert not thread.is_alive()


# ---------------------------------------------------------------------------
# Crash-safety: the journal is the restart story
# ---------------------------------------------------------------------------

class FlakyJournal(JobJournal):
    """Raises on the Nth write — the injected crash point."""

    def __init__(self, directory, fail_at):
        super().__init__(directory)
        self.fail_at = fail_at
        self.writes = 0

    def write(self, job):
        self.writes += 1
        if self.writes == self.fail_at:
            raise OSError("injected crash between journal writes")
        super().write(job)


def _crashing_scheduler(tmp_path, sweep_fn, fail_at, registry):
    tracer = Tracer()
    return Scheduler(
        queue=JobQueue(metrics=tracer.metrics),
        journal=FlakyJournal(tmp_path / "journal", fail_at=fail_at),
        registry=registry,
        sweep_fn=sweep_fn,
        tracer=tracer,
        event_log=EventLog(),
    )


def _resume(tmp_path, sweep_fn, registry):
    """A restarted service: fresh queue + scheduler over the same
    journal directory, re-admitting the journaled in-flight jobs."""
    journal = JobJournal(tmp_path / "journal")
    scheduler = Scheduler(queue=JobQueue(), journal=journal,
                          registry=registry, sweep_fn=sweep_fn)
    for job in journal.in_flight():
        scheduler.queue.restore(job)
    resumed = scheduler.queue.next_job()
    if resumed is not None:
        scheduler.run_job(resumed)
    return resumed


def test_crash_mid_job_resumes_without_reanalysis(tmp_path):
    """Crash after round 0 is journaled: the restart re-analyzes only
    the apps without a journaled row, and the registry gets exactly
    one record."""
    registry = RunRegistry(tmp_path / "runs")
    # Writes: 1 = running, 2 = after round 0, 3 = after round 1.
    crashy = _crashing_scheduler(tmp_path, scripted_sweep({BETA: 1}),
                                 fail_at=3, registry=registry)
    job = submit_demo_job(crashy)
    with pytest.raises(OSError, match="injected crash"):
        crashy.run_job(job)
    assert registry.list() == []  # crashed before the terminal record

    resume_sweep = scripted_sweep({})
    resumed = _resume(tmp_path, resume_sweep, registry)
    assert resumed is not None and resumed.state == DONE
    # Only the unfinished app was swept again.
    assert resume_sweep.calls == [[BETA]]
    assert sorted(resumed.completed) == sorted(DEMO_APPS)
    # Re-admission budgets survive the restart too.
    assert resumed.attempts == {BETA: 1}
    assert len(registry.list()) == 1


def test_crash_between_registry_and_journal_does_not_duplicate(tmp_path):
    """Crash after the registry record but before the terminal journal
    write: the restart re-records the identical content-addressed
    payload, so the registry still holds exactly one record."""
    registry = RunRegistry(tmp_path / "runs")
    # Writes: 1 = running, 2 = after the only round, 3 = terminal.
    crashy = _crashing_scheduler(tmp_path, scripted_sweep({}),
                                 fail_at=3, registry=registry)
    job = submit_demo_job(crashy)
    with pytest.raises(OSError, match="injected crash"):
        crashy.run_job(job)
    assert len(registry.list()) == 1  # the record made it out

    resume_sweep = scripted_sweep({})
    resumed = _resume(tmp_path, resume_sweep, registry)
    assert resumed is not None and resumed.state == DONE
    assert resume_sweep.calls == []  # nothing left to analyze
    records = registry.list()
    assert len(records) == 1  # identical payload, same run id
    assert resumed.run_id == records[0].run_id


# ---------------------------------------------------------------------------
# Integration: real killed worker processes
# ---------------------------------------------------------------------------

def test_real_worker_death_recovery_end_to_end(tmp_path, monkeypatch):
    """A process-backend job whose worker is SIGKILLed mid-chunk
    completes after re-admission, and its rows match a clean run."""
    monkeypatch.setenv("FRAGDROID_CHAOS_KILL", f"{BETA}:1")
    monkeypatch.setenv("FRAGDROID_CHAOS_KILL_STATE",
                       str(tmp_path / "chaos"))
    scheduler = make_scheduler(tmp_path)
    job = submit_demo_job(scheduler, backend="process", workers=2,
                          time_budget_s=120.0)
    scheduler.run_job(job)
    assert job.state == DONE
    assert all(row["ok"] for row in job.completed.values())
    counters = scheduler.tracer.metrics.counters()
    assert counters["sweep.worker.died"] >= 1
    assert counters["serve.readmitted"] >= 1

    monkeypatch.delenv("FRAGDROID_CHAOS_KILL")
    clean = make_scheduler(tmp_path / "clean")
    clean_job = submit_demo_job(clean, backend="process", workers=2,
                                time_budget_s=120.0)
    clean.run_job(clean_job)
    assert _rows_sans_duration(job) == _rows_sans_duration(clean_job)
