"""The SSE fan-out broker: matching, bounded buffers, cleanup."""

from repro.obs.events import Event, EventLog
from repro.obs.metrics import Metrics
from repro.serve import EventBroker, Subscription, event_matches


def _event(seq, kind="job.state", app="", **attributes):
    return Event(seq=seq, kind=kind, step=0, wall=float(seq),
                 app=app, attributes=attributes)


def test_event_matches_prefers_the_job_stamp():
    apps = {"com.a"}
    assert event_matches(_event(1, job="j1"), "j1", apps)
    assert not event_matches(_event(1, job="j2"), "j1", apps)
    # No stamp: fall back to app membership (absorbed worker events).
    assert event_matches(_event(2, app="com.a"), "j1", apps)
    assert not event_matches(_event(2, app="com.b"), "j1", apps)


def test_broker_fans_out_only_to_matching_subscriptions():
    broker = EventBroker()
    mine = broker.subscribe("j1", ["com.a"])
    other = broker.subscribe("j2", ["com.b"])
    broker.emit(_event(1, job="j1"))
    broker.emit(_event(2, app="com.a"))
    broker.emit(_event(3, job="j2"))
    assert mine.pending() == 2
    assert other.pending() == 1
    assert mine.get(timeout=0.1).seq == 1
    assert mine.get(timeout=0.1).seq == 2
    assert mine.get(timeout=0.01) is None  # quiet stream -> heartbeat


def test_broker_attaches_to_an_event_log_as_a_sink():
    broker = EventBroker()
    log = EventLog(sinks=[broker])
    subscription = broker.subscribe("j1", set())
    log.emit("job.state", job="j1", state="running")
    got = subscription.get(timeout=0.1)
    assert got is not None and got.attributes["state"] == "running"


def test_slow_client_overflows_and_stops_receiving():
    metrics = Metrics()
    broker = EventBroker(metrics=metrics, buffer=2)
    slow = broker.subscribe("j1", set())
    for seq in range(1, 6):
        broker.emit(_event(seq, job="j1"))
    assert slow.overflowed is True
    assert slow.pending() == 2  # bounded: nothing past the buffer
    # Drops are counted once per discarded event.
    assert metrics.snapshot()["counters"]["serve.sse.dropped"] == 3
    # An overflowed subscription refuses further events outright.
    assert slow.offer(_event(9, job="j1")) is False


def test_unsubscribe_is_idempotent_and_leaves_no_buffer_behind():
    metrics = Metrics()
    broker = EventBroker(metrics=metrics)
    subscription = broker.subscribe("j1", set())
    assert broker.subscriber_count() == 1
    broker.unsubscribe(subscription)
    broker.unsubscribe(subscription)  # second detach is a no-op
    assert broker.subscriber_count() == 0
    assert subscription.closed is True
    assert subscription.offer(_event(1, job="j1")) is False
    broker.emit(_event(2, job="j1"))  # nobody buffers it
    assert subscription.pending() == 0
    counters = metrics.snapshot()["counters"]
    assert counters["serve.sse.subscribed"] == 1
    assert counters["serve.sse.unsubscribed"] == 1


def test_emit_with_no_subscribers_is_a_no_op():
    broker = EventBroker()
    broker.emit(_event(1, job="j1"))  # must not raise or buffer
    assert broker.subscriber_count() == 0


def test_subscription_buffer_floor_is_one():
    subscription = Subscription("j1", set(), buffer=0)
    assert subscription.offer(_event(1, job="j1")) is True
    assert subscription.offer(_event(2, job="j1")) is False
    assert subscription.overflowed is True
