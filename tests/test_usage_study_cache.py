"""The usage study over a shared StaticCache (batched digests + notes)."""

from repro.bench.runner import run_usage_study
from repro.static.cache import StaticCache


def test_cached_study_matches_uncached(tmp_path):
    cache = StaticCache(directory=tmp_path / "cache")
    plain = run_usage_study(count=40, seed=7)
    cold = run_usage_study(count=40, seed=7, cache=cache)
    warm = run_usage_study(count=40, seed=7, cache=cache)
    assert cold == plain
    assert warm == plain


def test_cold_run_misses_then_warm_run_hits(tmp_path):
    cache = StaticCache(directory=tmp_path / "cache")
    run_usage_study(count=40, seed=7, cache=cache)
    stats = cache.stats()
    assert stats["hits"] == 0
    assert stats["misses"] == 40
    run_usage_study(count=40, seed=7, cache=cache)
    stats = cache.stats()
    assert stats["hits"] == 40
    assert stats["misses"] == 40
    assert stats["hit_rate"] == 0.5


def test_notes_survive_to_a_fresh_cache_instance(tmp_path):
    first = StaticCache(directory=tmp_path / "cache")
    expected = run_usage_study(count=40, seed=7, cache=first)
    fresh = StaticCache(directory=tmp_path / "cache")
    assert run_usage_study(count=40, seed=7, cache=fresh) == expected
    assert fresh.stats()["hits"] == 40
    assert fresh.stats()["misses"] == 0


def test_disjoint_corpora_share_nothing(tmp_path):
    cache = StaticCache(directory=tmp_path / "cache")
    run_usage_study(count=20, seed=7, cache=cache)
    run_usage_study(count=20, seed=8, cache=cache)
    stats = cache.stats()
    assert stats["misses"] == 40  # different seeds, different digests
