"""The Apktool-equivalent decoder."""

import pytest

from repro.errors import PackedApkError
from repro.smali.apktool import Apktool


@pytest.fixture
def decoded(demo_apk):
    return Apktool().decode(demo_apk)


def test_decode_produces_manifest(decoded):
    assert decoded.package == "com.example.demo"
    assert decoded.manifest.launcher_activity is not None


def test_decode_parses_all_classes(decoded, demo_apk):
    assert len(decoded.classes) == len(demo_apk.smali_files)


def test_decode_parses_layouts(decoded, demo_apk):
    assert len(decoded.layouts) == len(demo_apk.layout_files)
    assert "activity_main_activity" in decoded.layouts


def test_class_lookup(decoded):
    cls = decoded.class_by_name("com.example.demo.MainActivity")
    assert cls.super_name == "android.app.Activity"
    assert decoded.has_class("com.example.demo.HomeFragment")
    assert not decoded.has_class("com.example.demo.Ghost")
    with pytest.raises(KeyError):
        decoded.class_by_name("com.example.demo.Ghost")


def test_inner_classes_of(decoded):
    inners = decoded.inner_classes_of("com.example.demo.MainActivity")
    assert inners
    assert all(c.name.startswith("com.example.demo.MainActivity$")
               for c in inners)
    # An inner class of another activity must not leak in.
    assert not any("SecondActivity" in c.name for c in inners)


def test_resources_round_trip(decoded):
    rid = decoded.resources.get("id", "btn_next")
    assert rid is not None
    assert decoded.resources.reverse(rid.value) == ("id", "btn_next")


def test_packed_apk_refused(demo_spec):
    from repro.apk import build_apk

    demo_spec.packed = True
    with pytest.raises(PackedApkError):
        Apktool().decode(build_apk(demo_spec))
