"""Dalvik class model: types, refs, instructions."""

import pytest

from repro.errors import SmaliError
from repro.smali.model import (
    Instruction,
    MethodRef,
    SmaliClass,
    SmaliField,
    SmaliMethod,
    java_name,
    jvm_type,
)


@pytest.mark.parametrize(
    "java,descriptor",
    [
        ("void", "V"),
        ("int", "I"),
        ("boolean", "Z"),
        ("java.lang.String", "Ljava/lang/String;"),
        ("com.app.Main$1", "Lcom/app/Main$1;"),
        ("byte[]", "[B"),
        ("java.lang.String[]", "[Ljava/lang/String;"),
    ],
)
def test_type_conversion_round_trip(java, descriptor):
    assert jvm_type(java) == descriptor
    assert java_name(descriptor) == java


def test_java_name_rejects_garbage():
    with pytest.raises(SmaliError):
        java_name("Qnot-a-type")


def test_method_ref_descriptor_round_trip():
    ref = MethodRef("android.content.Intent", "<init>",
                    ("android.content.Context", "java.lang.Class"), "void")
    parsed = MethodRef.parse(ref.descriptor())
    assert parsed == ref


def test_method_ref_parse_rejects_garbage():
    with pytest.raises(SmaliError):
        MethodRef.parse("not a method")


def test_unknown_opcode_rejected():
    with pytest.raises(SmaliError):
        Instruction("fly-to-moon")


def test_invoke_accessors():
    ref = MethodRef("com.app.A", "go")
    instruction = Instruction("invoke-virtual", ("v0", ref))
    assert instruction.is_invoke
    assert instruction.method == ref
    assert instruction.registers == ("v0",)
    with pytest.raises(SmaliError):
        Instruction("nop").method  # noqa: B018


def test_inner_class_properties():
    inner = SmaliClass(name="com.app.Main$2")
    assert inner.is_inner
    assert inner.outer_name == "com.app.Main"
    outer = SmaliClass(name="com.app.Main")
    assert not outer.is_inner
    assert outer.outer_name is None


def test_referenced_classes_collects_all_mentions():
    cls = SmaliClass(name="com.app.A", super_name="android.app.Activity")
    cls.interfaces.append("java.lang.Runnable")
    cls.fields.append(SmaliField("f", "com.app.Helper"))
    method = cls.add_method(SmaliMethod(name="m"))
    method.emit("new-instance", "v0", "com.app.NewsFragment")
    method.emit("const-class", "v1", "com.app.Second")
    method.emit("invoke-static",
                MethodRef("com.app.Util", "x", (), "void"))
    refs = cls.referenced_classes()
    for expected in ("android.app.Activity", "java.lang.Runnable",
                     "com.app.Helper", "com.app.NewsFragment",
                     "com.app.Second", "com.app.Util"):
        assert expected in refs
    assert "com.app.A" not in refs


def test_method_invokes_listing():
    method = SmaliMethod(name="m")
    method.emit("nop")
    method.emit("invoke-virtual", "p0", MethodRef("com.a.B", "f"))
    assert [r.name for r in method.invokes()] == ["f"]


def test_class_file_name():
    assert SmaliClass(name="com.app.Main").file_name == "com/app/Main.smali"
