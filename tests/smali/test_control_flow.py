"""Branch instructions: assembly round trip and structured decompilation."""

from repro.smali.assemble import parse_class, print_class
from repro.smali.javagen import JavaDecompiler
from repro.smali.model import Instruction, MethodRef, SmaliClass, SmaliMethod


def build_branching_class():
    cls = SmaliClass(name="com.cf.Main", super_name="java.lang.Object")
    method = cls.add_method(SmaliMethod(name="submit"))
    method.emit("invoke-virtual", "p0",
                MethodRef("com.cf.Main", "validateForm", (), "boolean"))
    method.emit("move-result", "v0")
    method.emit("if-eqz", "v0", "cond_fail_1")
    method.emit("const-string", "v1", "ok")
    method.emit("goto", "cond_end_1")
    method.emit("label", "cond_fail_1")
    method.emit("const-string", "v1", "fail")
    method.emit("label", "cond_end_1")
    method.emit("return-void")
    return cls


def test_branch_round_trip():
    cls = build_branching_class()
    parsed = parse_class(print_class(cls))
    assert parsed.methods[0].instructions == cls.methods[0].instructions


def test_printed_branch_format():
    text = print_class(build_branching_class())
    assert "if-eqz v0, :cond_fail_1" in text
    assert "goto :cond_end_1" in text
    assert "    :cond_fail_1" in text


def test_decompiled_if_else_structure():
    java = JavaDecompiler().decompile_class(build_branching_class())
    lines = [line.strip() for line in java.splitlines()]
    if_index = lines.index("if (this.validateForm()) {")
    else_index = lines.index("} else {")
    end_index = lines.index("}", else_index)
    assert if_index < else_index < end_index


def test_if_nez_negated():
    cls = SmaliClass(name="com.cf.Neg", super_name="java.lang.Object")
    method = cls.add_method(SmaliMethod(name="m"))
    method.emit("const/4", "v0", 1)
    method.emit("if-nez", "v0", "cond_fail_1")
    method.emit("label", "cond_fail_1")
    method.emit("return-void")
    java = JavaDecompiler().decompile_class(cls)
    assert "if (!1) {" in java
