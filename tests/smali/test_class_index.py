"""The lazy class index behind DecodedApk lookups.

Property test: every indexed lookup must agree with the plain linear
scan over ``decoded.classes`` it replaced — first match for
``class_by_name``, list-order prefix scan for ``inner_classes_of``.
"""

import pytest
from hypothesis import given, strategies as st

from repro.apk.manifest import Manifest
from repro.smali.apktool import DecodedApk
from repro.smali.model import SmaliClass

_simple = st.sampled_from(
    ["Main", "Second", "Home", "News", "Vault", "Settings"]
)
_inner = st.sampled_from(["1", "Listener", "Factory", "State$deep"])
_names = st.one_of(
    _simple.map(lambda s: f"com.p.{s}"),
    st.tuples(_simple, _inner).map(lambda t: f"com.p.{t[0]}${t[1]}"),
)


def _decoded(names):
    return DecodedApk(
        package="com.p",
        manifest=Manifest(package="com.p"),
        classes=[SmaliClass(name=name) for name in names],
    )


def _scan_first(decoded, name):
    for cls in decoded.classes:
        if cls.name == name:
            return cls
    return None


def _scan_inners(decoded, name):
    prefix = name + "$"
    return [c for c in decoded.classes if c.name.startswith(prefix)]


@given(st.lists(_names, max_size=30), _names)
def test_index_agrees_with_linear_scan(names, probe):
    decoded = _decoded(names)
    for name in set(names) | {probe, "com.p.Ghost"}:
        expected = _scan_first(decoded, name)
        assert decoded.has_class(name) == (expected is not None)
        if expected is None:
            with pytest.raises(KeyError):
                decoded.class_by_name(name)
        else:
            # Identity, not equality: the first declaration wins, even
            # with duplicate names in the list.
            assert decoded.class_by_name(name) is expected
        inners = decoded.inner_classes_of(name)
        assert [c.name for c in inners] \
            == [c.name for c in _scan_inners(decoded, name)]
        assert all(a is b for a, b in zip(inners, _scan_inners(decoded, name)))


def test_keyerror_message_unchanged():
    decoded = _decoded(["com.p.Main"])
    with pytest.raises(KeyError) as exc:
        decoded.class_by_name("com.p.Ghost")
    assert exc.value.args[0] == "no class 'com.p.Ghost' in decoded com.p"


def test_index_rebuilds_when_classes_change():
    decoded = _decoded(["com.p.Main"])
    assert decoded.has_class("com.p.Main")
    decoded.classes.append(SmaliClass(name="com.p.Main$Listener"))
    assert decoded.has_class("com.p.Main$Listener")
    assert [c.name for c in decoded.inner_classes_of("com.p.Main")] \
        == ["com.p.Main$Listener"]
    decoded.classes.pop()
    assert not decoded.has_class("com.p.Main$Listener")


def test_prefix_never_leaks_siblings():
    decoded = _decoded([
        "com.p.Main", "com.p.Main$Listener", "com.p.MainActivity",
        "com.p.MainActivity$1", "com.p.Main$State$deep",
    ])
    assert [c.name for c in decoded.inner_classes_of("com.p.Main")] \
        == ["com.p.Main$Listener", "com.p.Main$State$deep"]
    assert [c.name for c in decoded.inner_classes_of("com.p.MainActivity")] \
        == ["com.p.MainActivity$1"]
