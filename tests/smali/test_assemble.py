"""Smali text assembler/disassembler, incl. property-based round trips."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.smali.assemble import parse_class, print_class
from repro.smali.model import (
    Instruction,
    MethodRef,
    SmaliClass,
    SmaliField,
    SmaliMethod,
)


def build_sample_class():
    cls = SmaliClass(
        name="com.app.Main",
        super_name="android.app.Activity",
        interfaces=["android.view.View$OnClickListener"],
        source="Main.java",
    )
    cls.fields.append(SmaliField("this$0", "com.app.Outer"))
    cls.fields.append(SmaliField("TAG", "java.lang.String", static=True))
    method = cls.add_method(
        SmaliMethod(name="onCreate", params=["android.os.Bundle"])
    )
    method.emit("invoke-super", "p0", "p1",
                MethodRef("android.app.Activity", "onCreate",
                          ("android.os.Bundle",)))
    method.emit("const", "v0", 0x7F020001)
    method.emit("const-string", "v1", 'hello "quoted" \\ world')
    method.emit("const-class", "v2", "com.app.Second")
    method.emit("new-instance", "v3", "android.content.Intent")
    method.emit("invoke-direct", "v3", "p0", "v2",
                MethodRef("android.content.Intent", "<init>",
                          ("android.content.Context", "java.lang.Class")))
    method.emit("move-result-object", "v4")
    method.emit("check-cast", "v4", "android.widget.EditText")
    method.emit("instance-of", "v5", "v4", "com.app.NewsFragment")
    method.emit("iget-object", "v5", "p0", "com.app.Main->this$0:Lcom/app/Outer;")
    method.emit("const/4", "v6", 1)
    method.emit("return-void")
    getter = cls.add_method(
        SmaliMethod(name="get", params=[], ret="java.lang.String",
                    static=True)
    )
    getter.emit("const-string", "v0", "x")
    getter.emit("return-object", "v0")
    return cls


def assert_classes_equal(a: SmaliClass, b: SmaliClass):
    assert a.name == b.name
    assert a.super_name == b.super_name
    assert a.interfaces == b.interfaces
    assert a.source == b.source
    assert [(f.name, f.type, f.static) for f in a.fields] == [
        (f.name, f.type, f.static) for f in b.fields
    ]
    assert len(a.methods) == len(b.methods)
    for ma, mb in zip(a.methods, b.methods):
        assert (ma.name, ma.params, ma.ret, ma.static) == (
            mb.name, mb.params, mb.ret, mb.static
        )
        assert ma.instructions == mb.instructions


def test_round_trip_sample():
    cls = build_sample_class()
    assert_classes_equal(cls, parse_class(print_class(cls)))


def test_printed_format_looks_like_smali():
    text = print_class(build_sample_class())
    assert text.startswith(".class public Lcom/app/Main;")
    assert ".super Landroid/app/Activity;" in text
    assert ".implements Landroid/view/View$OnClickListener;" in text
    assert ".method public onCreate(Landroid/os/Bundle;)V" in text
    assert "invoke-super {p0, p1}" in text
    assert ".end method" in text


def test_parse_rejects_missing_class_directive():
    with pytest.raises(Exception):
        parse_class(".super Ljava/lang/Object;\n")


# -- property-based round trip -------------------------------------------------

_identifiers = st.from_regex(r"[a-z][a-z0-9]{0,8}", fullmatch=True)
_class_names = st.builds(
    lambda pkg, cls: f"com.{pkg}.{cls.capitalize()}", _identifiers, _identifiers
)
_registers = st.from_regex(r"[vp][0-9]", fullmatch=True)
_types = st.sampled_from(
    ["void", "int", "boolean", "java.lang.String", "android.view.View"]
)


@st.composite
def instructions(draw):
    choice = draw(st.integers(0, 7))
    if choice == 0:
        return Instruction("nop")
    if choice == 1:
        text = draw(st.text(
            alphabet=st.characters(blacklist_categories=("Cs", "Cc")),
            max_size=20,
        ))
        return Instruction("const-string", (draw(_registers), text))
    if choice == 2:
        return Instruction("const-class",
                           (draw(_registers), draw(_class_names)))
    if choice == 3:
        return Instruction("const",
                           (draw(_registers),
                            draw(st.integers(0, 0x7FFFFFFF))))
    if choice == 4:
        return Instruction("new-instance",
                           (draw(_registers), draw(_class_names)))
    if choice == 5:
        return Instruction("move-result-object", (draw(_registers),))
    if choice == 6:
        ref = MethodRef(draw(_class_names), draw(_identifiers),
                        tuple(draw(st.lists(_types, max_size=3))),
                        draw(_types))
        regs = tuple(draw(st.lists(_registers, max_size=3, unique=True)))
        return Instruction("invoke-virtual", regs + (ref,))
    return Instruction("check-cast", (draw(_registers), draw(_class_names)))


@st.composite
def smali_classes(draw):
    cls = SmaliClass(
        name=draw(_class_names),
        super_name=draw(_class_names),
    )
    for index in range(draw(st.integers(0, 3))):
        method = SmaliMethod(
            name=f"m{index}",
            params=draw(st.lists(_types.filter(lambda t: t != "void"),
                                 max_size=2)),
            ret=draw(_types),
            static=draw(st.booleans()),
        )
        method.instructions = draw(st.lists(instructions(), max_size=6))
        method.instructions.append(Instruction("return-void"))
        cls.methods.append(method)
    return cls


@settings(max_examples=60, deadline=None)
@given(smali_classes())
def test_round_trip_property(cls):
    assert_classes_equal(cls, parse_class(print_class(cls)))
