"""jd-core equivalent: the decompiled Java must contain exactly the
line shapes Algorithm 1 greps — and must NOT leak statically-invisible
targets."""

import pytest

from repro.apk import (
    ActivitySpec,
    AppSpec,
    FragmentSpec,
    ShowFragment,
    StartActivity,
    StartActivityByAction,
    WidgetSpec,
    build_apk,
)
from repro.apk.appspec import FragmentFactory
from repro.smali.apktool import Apktool
from repro.smali.javagen import JavaDecompiler
from repro.static.edges import decompiled_unit


def unit_for(spec, class_name):
    decoded = Apktool().decode(build_apk(spec))
    return decompiled_unit(decoded, JavaDecompiler(), class_name)


def two_activity_spec(action):
    return AppSpec(
        package="com.jd",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True,
                         widgets=[WidgetSpec(id="btn", on_click=action)]),
            ActivitySpec(name="SecondActivity",
                         intent_actions=["com.jd.action.GO"]),
        ],
        fragments=[],
    )


def test_explicit_intent_line_shape():
    unit = unit_for(two_activity_spec(StartActivity("SecondActivity")),
                    "com.jd.MainActivity")
    assert "new android.content.Intent(this$0, com.jd.SecondActivity.class)" in unit
    assert "startActivity(localIntent);" in unit


def test_action_intent_line_shape():
    unit = unit_for(
        two_activity_spec(StartActivityByAction("com.jd.action.GO")),
        "com.jd.MainActivity",
    )
    assert 'new android.content.Intent("com.jd.action.GO")' in unit


def test_dynamic_target_does_not_leak_class_name():
    unit = unit_for(
        two_activity_spec(StartActivity("SecondActivity", dynamic=True)),
        "com.jd.MainActivity",
    )
    assert "SecondActivity.class" not in unit
    assert "resolveTarget" in unit


def test_dynamic_action_does_not_leak_action_string():
    unit = unit_for(
        two_activity_spec(
            StartActivityByAction("com.jd.action.GO", dynamic=True)
        ),
        "com.jd.MainActivity",
    )
    assert '"com.jd.action.GO"' not in unit
    assert "ActionCodec.decode" in unit


def fragment_spec(factory, managed=True):
    return AppSpec(
        package="com.jd",
        activities=[
            ActivitySpec(
                name="MainActivity", launcher=True,
                hosted_fragments=["NewsFragment"],
                widgets=[WidgetSpec(
                    id="btn",
                    on_click=ShowFragment("NewsFragment",
                                          "fragment_container"),
                )],
            ),
        ],
        fragments=[FragmentSpec(name="NewsFragment", factory=factory,
                                managed=managed)],
    )


def test_fragment_transaction_lines():
    unit = unit_for(fragment_spec(FragmentFactory.NEW),
                    "com.jd.MainActivity")
    assert "FragmentManager localManager = getFragmentManager();" in unit
    assert ("FragmentTransaction localTransaction = "
            "localManager.beginTransaction();") in unit
    assert "new com.jd.NewsFragment()" in unit
    assert "localTransaction.commit();" in unit


def test_new_instance_factory_line():
    unit = unit_for(fragment_spec(FragmentFactory.NEW_INSTANCE),
                    "com.jd.MainActivity")
    assert "com.jd.NewsFragment.newInstance(" in unit


def test_custom_factory_hides_fragment():
    unit = unit_for(fragment_spec(FragmentFactory.CUSTOM),
                    "com.jd.MainActivity")
    assert "new com.jd.NewsFragment()" not in unit
    assert "NewsFragment.newInstance" not in unit
    assert "FragmentRouter.route" in unit


def test_unmanaged_fragment_keeps_new_but_no_transaction():
    unit = unit_for(fragment_spec(FragmentFactory.NEW, managed=False),
                    "com.jd.MainActivity")
    assert "new com.jd.NewsFragment()" in unit
    assert "beginTransaction" not in unit


def test_unit_merges_inner_classes():
    unit = unit_for(two_activity_spec(StartActivity("SecondActivity")),
                    "com.jd.MainActivity")
    assert "class MainActivity " in unit
    assert "class MainActivity_1 " in unit  # $ rendered as _
