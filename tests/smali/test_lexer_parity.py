"""The dispatch-table lexer against the frozen pre-rewrite parser.

The single-pass lexer replaced a per-line ``startswith`` chain; a
verbatim copy of the old parser lives in ``benchmarks/_legacy_smali.py``
as the benchmark's reference arm.  These tests pin *semantic* parity:
identical parse results on generated classes and on an edge-case corpus
(unknown directives, annotation-style lines, nested inner classes,
directive-prefix collisions), and identical errors on malformed input.
"""

import importlib.util
import pathlib

import pytest
from hypothesis import given, settings

from repro.errors import SmaliError
from repro.smali.assemble import parse_class, print_class

from tests.smali.test_assemble import (  # reuse the round-trip strategy
    assert_classes_equal,
    smali_classes,
)

_LEGACY_PATH = (pathlib.Path(__file__).resolve().parents[2]
                / "benchmarks" / "_legacy_smali.py")


def _load_legacy():
    spec = importlib.util.spec_from_file_location("_legacy_smali",
                                                  _LEGACY_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


legacy = _load_legacy()


@settings(max_examples=60, deadline=None)
@given(smali_classes())
def test_parsers_agree_on_generated_classes(cls):
    text = print_class(cls)
    assert_classes_equal(legacy.parse_class(text), parse_class(text))


EDGE_CASES = [
    # Annotation-style and other unknown directives are ignored outside
    # method bodies, exactly as the startswith chain ignored them.
    (".class public Lcom/app/Main;\n"
     ".super Landroid/app/Activity;\n"
     ".annotation runtime Ljava/lang/Deprecated;\n"
     ".end annotation\n"),
    # Nested inner classes (listener in a fragment in an activity).
    (".class public Lcom/app/Main$TabFragment$1;\n"
     ".super Ljava/lang/Object;\n"
     ".implements Landroid/view/View$OnClickListener;\n"
     ".method public onClick(Landroid/view/View;)V\n"
     "    .registers 3\n"
     "    new-instance v0, Lcom/app/Main$Other;\n"
     "    return-void\n"
     ".end method\n"),
    # A directive-prefix collision: ".classx" startswith ".class", so the
    # historical parser treated it as a class directive.  Parity matters
    # more than prettiness here.
    (".classx Lcom/app/Weird;\n"
     ".super Ljava/lang/Object;\n"),
    # Comments and blank lines everywhere, label/branch instructions.
    ("# leading comment\n"
     ".class public Lcom/app/Loop;\n"
     "\n"
     ".super Ljava/lang/Object;\n"
     ".method public run()V\n"
     "    .registers 2\n"
     "    # body comment\n"
     "    :start\n"
     "    if-eqz v0, :done\n"
     "    goto :start\n"
     "    :done\n"
     "    return-void\n"
     ".end method\n"),
    # ".end method" reached through the generic ".end" token.
    (".class public Lcom/app/Fields;\n"
     ".super Ljava/lang/Object;\n"
     ".source \"Fields.java\"\n"
     ".field public static TAG:Ljava/lang/String;\n"
     ".field public count:I\n"
     ".method public static get()Ljava/lang/String;\n"
     "    .registers 1\n"
     "    const-string v0, \"with \\\"escapes\\\" and \\\\ slash\"\n"
     "    return-object v0\n"
     ".end method\n"),
]


@pytest.mark.parametrize("text", EDGE_CASES)
def test_edge_case_corpus_parity(text):
    assert_classes_equal(legacy.parse_class(text), parse_class(text))


MALFORMED = [
    # No .class directive at all.
    ".super Ljava/lang/Object;\n",
    # Unknown opcode inside a method.
    (".class public Lcom/app/Bad;\n"
     ".super Ljava/lang/Object;\n"
     ".method public run()V\n"
     "    .registers 1\n"
     "    frobnicate v0\n"
     ".end method\n"),
    # Wrong operand count.
    (".class public Lcom/app/Bad;\n"
     ".super Ljava/lang/Object;\n"
     ".method public run()V\n"
     "    .registers 1\n"
     "    instance-of v0, v1\n"
     ".end method\n"),
    # Unknown invoke flavour still reports a bad reference first when
    # the reference itself is broken (error ordering parity).
    (".class public Lcom/app/Bad;\n"
     ".super Ljava/lang/Object;\n"
     ".method public run()V\n"
     "    .registers 1\n"
     "    invoke-sideways {v0}, garbage\n"
     ".end method\n"),
    # Annotation-style directive *inside* a method body falls through to
    # the instruction parser, as the chain always did.
    (".class public Lcom/app/Bad;\n"
     ".super Ljava/lang/Object;\n"
     ".method public run()V\n"
     "    .registers 1\n"
     "    .annotation runtime Ljava/lang/Deprecated;\n"
     ".end method\n"),
]


@pytest.mark.parametrize("text", MALFORMED)
def test_malformed_lines_raise_the_same_errors(text):
    with pytest.raises(SmaliError) as new_error:
        parse_class(text)
    with pytest.raises(SmaliError) as legacy_error:
        legacy.parse_class(text)
    assert str(new_error.value) == str(legacy_error.value)
