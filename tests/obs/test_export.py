"""Prometheus exposition and the run manifest."""

import json

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.corpus import demo_tabbed_app
from repro.obs import EventLog, Metrics, Tracer, prometheus_text, run_manifest


def test_prometheus_text_counters_and_histograms():
    metrics = Metrics()
    metrics.inc("clicks", 3)
    metrics.inc("faults.adb-hang")
    metrics.observe("queue.depth", 2.0)
    metrics.observe("queue.depth", 4.0)
    text = prometheus_text(metrics)
    assert "# TYPE fragdroid_clicks_total counter" in text
    assert "fragdroid_clicks_total 3" in text
    # Names are sanitised to the Prometheus charset.
    assert "fragdroid_faults_adb_hang_total 1" in text
    assert "# TYPE fragdroid_queue_depth summary" in text
    assert 'fragdroid_queue_depth{quantile="0.5"} 2' in text
    assert 'fragdroid_queue_depth{quantile="0.9"} 4' in text
    assert 'fragdroid_queue_depth{quantile="0.99"} 4' in text
    assert "fragdroid_queue_depth_count 2" in text
    assert "fragdroid_queue_depth_sum 6" in text
    # min/max are separate gauges: a summary may only carry
    # quantile/sum/count samples.
    assert "# TYPE fragdroid_queue_depth_min gauge" in text
    assert "fragdroid_queue_depth_min 2" in text
    assert "fragdroid_queue_depth_max 4" in text
    assert text.endswith("\n")


def test_prometheus_text_tolerates_pre_quantile_snapshots():
    # Snapshots journaled before the quantile fields existed still
    # render — they just omit the quantile samples.
    old = {"counters": {}, "histograms": {
        "h": {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0,
              "mean": 3.0}}}
    text = prometheus_text(old)
    assert "quantile=" not in text
    assert "fragdroid_h_sum 6" in text
    assert "fragdroid_h_count 2" in text


def test_prometheus_text_parses_line_by_line():
    """Every non-comment line must be `<name>[{labels}] <float>` — the
    pure-python exposition check the CI smoke job also runs."""
    import re

    metrics = Metrics()
    metrics.inc("serve.admitted", 2)
    metrics.observe("serve.queue.wait_s", 0.25)
    metrics.observe("serve.queue.wait_s", 0.75)
    sample = re.compile(
        r'^[a-zA-Z_][a-zA-Z0-9_]*(\{quantile="[0-9.]+"\})? '
        r"[-+0-9.e]+$")
    lines = prometheus_text(metrics).splitlines()
    assert lines
    for line in lines:
        if line.startswith("# TYPE "):
            parts = line.split()
            assert parts[3] in ("counter", "summary", "gauge"), line
            continue
        assert sample.match(line), line


def test_prometheus_text_accepts_snapshots_and_prefix():
    metrics = Metrics()
    metrics.inc("clicks")
    snapshot = metrics.snapshot()
    assert prometheus_text(snapshot, prefix="fd") == \
        "# TYPE fd_clicks_total counter\nfd_clicks_total 1\n"
    assert prometheus_text(Metrics()) == ""


def test_run_manifest_summarises_an_instrumented_run():
    config = FragDroidConfig(tracer=Tracer(), event_log=EventLog())
    result = FragDroid(Device(), config).explore(build_apk(demo_tabbed_app()))
    manifest = run_manifest(result, files=["report.json", "events.jsonl"])
    # Must be JSON-clean as written to manifest.json.
    manifest = json.loads(json.dumps(manifest))
    assert manifest["package"] == result.package
    assert manifest["coverage"]["activities"]["visited"] == \
        len(result.visited_activities)
    assert manifest["flight_recorder"]["events"] == len(result.events)
    assert manifest["flight_recorder"]["spans"] == len(result.spans)
    assert manifest["flight_recorder"]["event_census"]["run.start"] == 1
    assert "activities_t50" in manifest["discovery"]
    assert manifest["files"] == ["events.jsonl", "report.json"]
    assert "degradation" not in manifest  # fault-free run


def test_run_manifest_without_events_skips_discovery_section():
    result = FragDroid(Device()).explore(build_apk(demo_tabbed_app()))
    manifest = run_manifest(result)
    assert manifest["flight_recorder"]["events"] == 0
    assert "discovery" not in manifest
