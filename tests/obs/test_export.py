"""Prometheus exposition and the run manifest."""

import json

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.corpus import demo_tabbed_app
from repro.obs import EventLog, Metrics, Tracer, prometheus_text, run_manifest


def test_prometheus_text_counters_and_histograms():
    metrics = Metrics()
    metrics.inc("clicks", 3)
    metrics.inc("faults.adb-hang")
    metrics.observe("queue.depth", 2.0)
    metrics.observe("queue.depth", 4.0)
    text = prometheus_text(metrics)
    assert "# TYPE fragdroid_clicks_total counter" in text
    assert "fragdroid_clicks_total 3" in text
    # Names are sanitised to the Prometheus charset.
    assert "fragdroid_faults_adb_hang_total 1" in text
    assert "# TYPE fragdroid_queue_depth summary" in text
    assert "fragdroid_queue_depth_count 2" in text
    assert "fragdroid_queue_depth_sum 6" in text
    assert "fragdroid_queue_depth_min 2" in text
    assert "fragdroid_queue_depth_max 4" in text
    assert text.endswith("\n")


def test_prometheus_text_accepts_snapshots_and_prefix():
    metrics = Metrics()
    metrics.inc("clicks")
    snapshot = metrics.snapshot()
    assert prometheus_text(snapshot, prefix="fd") == \
        "# TYPE fd_clicks_total counter\nfd_clicks_total 1\n"
    assert prometheus_text(Metrics()) == ""


def test_run_manifest_summarises_an_instrumented_run():
    config = FragDroidConfig(tracer=Tracer(), event_log=EventLog())
    result = FragDroid(Device(), config).explore(build_apk(demo_tabbed_app()))
    manifest = run_manifest(result, files=["report.json", "events.jsonl"])
    # Must be JSON-clean as written to manifest.json.
    manifest = json.loads(json.dumps(manifest))
    assert manifest["package"] == result.package
    assert manifest["coverage"]["activities"]["visited"] == \
        len(result.visited_activities)
    assert manifest["flight_recorder"]["events"] == len(result.events)
    assert manifest["flight_recorder"]["spans"] == len(result.spans)
    assert manifest["flight_recorder"]["event_census"]["run.start"] == 1
    assert "activities_t50" in manifest["discovery"]
    assert manifest["files"] == ["events.jsonl", "report.json"]
    assert "degradation" not in manifest  # fault-free run


def test_run_manifest_without_events_skips_discovery_section():
    result = FragDroid(Device()).explore(build_apk(demo_tabbed_app()))
    manifest = run_manifest(result)
    assert manifest["flight_recorder"]["events"] == 0
    assert "discovery" not in manifest
