"""JSONL sink round-trip and the summary table."""

import io

import pytest

from repro.obs import (
    JsonlSink,
    Span,
    Tracer,
    aggregate_spans,
    read_spans,
    render_summary,
    timing_rows,
    top_slowest,
)


def _trace_some(tracer):
    with tracer.span("outer", app="com.example"):
        with tracer.span("inner"):
            pass
        with tracer.span("inner"):
            pass


def test_jsonl_round_trip_via_file(tmp_path):
    path = tmp_path / "run.jsonl"
    sink = JsonlSink(path)
    tracer = Tracer(sinks=[sink])
    _trace_some(tracer)
    tracer.close()

    loaded = read_spans(path)
    original = tracer.finished_spans()
    assert len(loaded) == len(original) == 3
    for got, want in zip(loaded, original):
        assert got.name == want.name
        assert got.span_id == want.span_id
        assert got.trace_id == want.trace_id
        assert got.parent_id == want.parent_id
        assert got.depth == want.depth
        assert got.duration == want.duration
        assert got.attributes == want.attributes


def test_jsonl_sink_accepts_open_handles():
    handle = io.StringIO()
    sink = JsonlSink(handle)
    tracer = Tracer(sinks=[sink])
    _trace_some(tracer)
    sink.close()  # flushes but must not close a borrowed handle
    handle.seek(0)
    spans = read_spans(handle)
    assert [s.name for s in spans] == ["inner", "inner", "outer"]


def test_jsonl_sink_flushes_every_line(tmp_path):
    # Regression: spans used to sit in the file buffer until close(),
    # so a crashed run lost its tail. Each line must hit disk at emit.
    path = tmp_path / "run.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    with tracer.span("outer"):
        with tracer.span("inner"):
            pass
        # "inner" finished -> its line must already be on disk, with
        # the sink still open.
        assert [s.name for s in read_spans(path)] == ["inner"]
    assert len(read_spans(path)) == 2
    tracer.close()


def test_read_spans_reports_file_and_line_on_malformed_json(tmp_path):
    path = tmp_path / "broken.jsonl"
    good = '{"name": "a", "span_id": 1, "trace_id": 1, "parent_id": null, ' \
           '"depth": 0, "start": 0.0, "duration": 0.1, "attributes": {}}'
    path.write_text(good + "\n{not json\n")
    with pytest.raises(ValueError) as excinfo:
        read_spans(path)
    message = str(excinfo.value)
    assert str(path) in message
    assert ":2:" in message  # 1-based line number of the bad line
    assert "malformed JSON in span file" in message


def test_read_spans_skips_blank_lines(tmp_path):
    path = tmp_path / "gappy.jsonl"
    line = '{"name": "a", "span_id": 1, "trace_id": 1, "parent_id": null, ' \
           '"depth": 0, "start": 0.0, "duration": 0.1, "attributes": {}}'
    path.write_text("\n" + line + "\n\n")
    assert [s.name for s in read_spans(path)] == ["a"]


def _span(name, duration, **attrs):
    return Span(name=name, span_id=1, trace_id=1, parent_id=None,
                depth=0, start=0.0, duration=duration, attributes=attrs)


def test_aggregate_spans_groups_by_name():
    spans = [_span("a", 0.2), _span("a", 0.4), _span("b", 0.1)]
    stats = {s.name: s for s in aggregate_spans(spans)}
    assert stats["a"].count == 2
    assert abs(stats["a"].total - 0.6) < 1e-9
    assert abs(stats["a"].mean - 0.3) < 1e-9
    assert stats["a"].maximum == 0.4
    assert stats["b"].count == 1
    # Sorted by total descending.
    assert [s.name for s in aggregate_spans(spans)] == ["a", "b"]


def test_top_slowest_orders_individual_spans():
    spans = [_span("a", 0.1), _span("b", 0.5), _span("c", 0.3)]
    assert [s.name for s in top_slowest(spans, 2)] == ["b", "c"]
    assert top_slowest(spans, 0) == []


def test_render_summary_contains_aggregates_and_slowest():
    spans = [_span("static.extract", 0.25, app="com.example"),
             _span("explorer.test_case", 0.05)]
    text = render_summary(spans, top=5)
    assert "static.extract" in text
    assert "explorer.test_case" in text
    assert "app=com.example" in text
    assert "top 2 slowest spans" in text
    assert render_summary([], top=5) == "no spans recorded"


def test_timing_rows_format():
    rows = timing_rows([_span("x", 0.5)])
    assert rows[0][0] == "x"
    assert rows[0][1] == 1
    assert rows[0][2] == "0.5000"
    assert rows[0][3] == "500.00"
