"""The flight recorder: EventLog, the null log, and persistence."""

import json

from repro.obs import (
    EVENT_KINDS,
    NULL_EVENT_LOG,
    Event,
    EventLog,
    JsonlSink,
    event_census,
    read_events,
)
from repro.obs.events import (
    ALL_EVENT_KINDS,
    ATTRIBUTION_EVENT_KINDS,
    EXPLORATION_EVENT_KINDS,
    SERVE_EVENT_KINDS,
    STATE_DISCOVERED,
    WIDGET_CLICKED,
)


def test_emit_assigns_monotonic_sequence_numbers():
    log = EventLog()
    first = log.emit(STATE_DISCOVERED, step=3, app="com.a", name="A")
    second = log.emit(WIDGET_CLICKED, step=5, app="com.a", widget="w")
    assert (first.seq, second.seq) == (1, 2)
    assert second.wall >= first.wall >= 0.0
    assert first.attributes == {"name": "A"}


def test_events_filter_by_app():
    log = EventLog()
    log.emit(STATE_DISCOVERED, app="com.a", name="A")
    log.emit(STATE_DISCOVERED, app="com.b", name="B")
    log.emit(WIDGET_CLICKED, app="com.a", widget="w")
    assert len(log.events()) == 3
    assert [e.attributes["name"] for e in log.events(app="com.a")
            if e.kind == STATE_DISCOVERED] == ["A"]
    assert len(log.events(app="com.b")) == 1


def test_census_counts_by_kind():
    log = EventLog()
    log.emit(STATE_DISCOVERED, name="A")
    log.emit(STATE_DISCOVERED, name="B")
    log.emit(WIDGET_CLICKED, widget="w")
    assert log.census() == {STATE_DISCOVERED: 2, WIDGET_CLICKED: 1}
    assert event_census(log.events()) == log.census()


def test_null_event_log_is_disabled_and_records_nothing():
    assert NULL_EVENT_LOG.enabled is False
    event = NULL_EVENT_LOG.emit(STATE_DISCOVERED, step=9, name="A")
    assert event.seq == 0
    assert NULL_EVENT_LOG.events() == []
    assert EventLog().enabled is True


def test_event_round_trip_via_jsonl(tmp_path):
    path = tmp_path / "events.jsonl"
    log = EventLog(sinks=[JsonlSink(path)])
    log.emit(STATE_DISCOVERED, step=7, app="com.a",
             component="fragment", name="F", hosts=["A"])
    log.emit(WIDGET_CLICKED, step=9, app="com.a", widget="btn")
    log.close()

    loaded = read_events(path)
    assert len(loaded) == 2
    for got, want in zip(loaded, log.events()):
        assert got.seq == want.seq
        assert got.kind == want.kind
        assert got.step == want.step
        assert got.app == want.app
        assert got.attributes == want.attributes


def test_jsonl_lines_are_flushed_before_close(tmp_path):
    # The crash-durability property: the line must be on disk as soon
    # as emit returns, not when the sink is closed.
    path = tmp_path / "events.jsonl"
    log = EventLog(sinks=[JsonlSink(path)])
    log.emit(STATE_DISCOVERED, step=1, name="A")
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["kind"] == STATE_DISCOVERED
    log.close()


def test_all_kind_constants_are_registered():
    # The grouped tuples are the single source of truth; the frozenset
    # is derived from their concatenation, so the registry cannot drift.
    assert STATE_DISCOVERED in EVENT_KINDS
    assert EVENT_KINDS == frozenset(ALL_EVENT_KINDS)
    assert len(ALL_EVENT_KINDS) == len(EVENT_KINDS), "duplicate kind"
    assert ALL_EVENT_KINDS == (EXPLORATION_EVENT_KINDS
                               + SERVE_EVENT_KINDS
                               + ATTRIBUTION_EVENT_KINDS)
    for kind in ALL_EVENT_KINDS:
        assert kind == kind.lower()


def test_from_dict_tolerates_minimal_records():
    event = Event.from_dict({"seq": 4, "kind": "transition"})
    assert event.step == 0
    assert event.app == ""
    assert event.attributes == {}
