"""Span-tree analytics: trees, self time, critical path, flamegraphs."""

from repro.obs import (
    Span,
    build_trees,
    collapsed_stacks,
    critical_path,
    self_times,
)


def _span(name, span_id, parent_id, start, duration, trace_id=1):
    return Span(name=name, span_id=span_id, trace_id=trace_id,
                parent_id=parent_id, depth=0, start=start,
                duration=duration, attributes={})


def _forest():
    # root(10) -> a(4) -> leaf(1)
    #          -> b(3)
    return [
        _span("root", 1, None, 0.0, 10.0),
        _span("a", 2, 1, 1.0, 4.0),
        _span("leaf", 3, 2, 1.5, 1.0),
        _span("b", 4, 1, 6.0, 3.0),
    ]


def test_build_trees_reconstructs_parent_child_structure():
    roots = build_trees(_forest())
    assert len(roots) == 1
    root = roots[0]
    assert root.span.name == "root"
    assert [c.span.name for c in root.children] == ["a", "b"]
    assert [n.span.name for n in root.walk()] == ["root", "a", "leaf", "b"]


def test_orphan_spans_are_promoted_to_roots():
    spans = [_span("child", 2, 99, 0.0, 1.0)]
    roots = build_trees(spans)
    assert [r.span.name for r in roots] == ["child"]


def test_self_times_subtract_children():
    totals = self_times(_forest())
    assert abs(totals["root"] - 3.0) < 1e-9   # 10 - (4 + 3)
    assert abs(totals["a"] - 3.0) < 1e-9      # 4 - 1
    assert abs(totals["leaf"] - 1.0) < 1e-9
    assert abs(totals["b"] - 3.0) < 1e-9


def test_critical_path_descends_slowest_children():
    path = critical_path(_forest())
    assert [s.name for s in path] == ["root", "a", "leaf"]
    assert critical_path([]) == []


def test_collapsed_stacks_telescope_to_root_duration():
    lines = collapsed_stacks(_forest())
    assert "root 3000000.000" in lines
    assert "root;a;leaf 1000000.000" in lines
    total = sum(float(line.rsplit(" ", 1)[1]) for line in lines)
    assert abs(total - 10.0 * 1e6) < 1e-3


def test_collapsed_stacks_aggregate_equal_stacks():
    spans = [
        _span("root", 1, None, 0.0, 5.0),
        _span("x", 2, 1, 0.0, 1.0),
        _span("x", 3, 1, 2.0, 2.0),
    ]
    lines = collapsed_stacks(spans)
    assert lines == ["root 2000000.000", "root;x 3000000.000"]
