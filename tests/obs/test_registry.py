"""The longitudinal run registry (repro.obs.registry)."""

import json
import threading

import pytest

from repro import FragDroidConfig
from repro.bench.parallel import explore_many
from repro.corpus.table1_apps import plan_for
from repro.obs import RunRecord, RunRegistry, Tracer, capture_run_record
from repro.obs.registry import (
    PIN_FILE,
    RECORD_SCHEMA,
    config_fingerprint,
    corpus_digest_of,
    coverage_from_rows,
    default_registry_dir,
)


def make_record(label="run", created=1.0, **overrides):
    record = RunRecord(
        label=label,
        coverage={"mean_activity_rate": 0.7, "apis": 100.0},
        meta={"created": created},
        **overrides,
    )
    record.run_id = record.compute_id()
    return record


# ---------------------------------------------------------------------------
# Content addressing
# ---------------------------------------------------------------------------

def test_run_id_is_content_addressed():
    a = make_record(created=1.0)
    b = make_record(created=999.0)  # meta is outside the hash
    assert a.run_id == b.run_id
    c = make_record(label="other")
    assert c.run_id != a.run_id
    assert len(a.run_id) == 16
    int(a.run_id, 16)  # hex


def test_record_roundtrips_through_json():
    record = make_record()
    record.phases = {"explore": {"count": 3, "self_total_s": 1.5,
                                 "self_p50_ms": 1.0, "self_p90_ms": 2.0,
                                 "self_p99_ms": 3.0}}
    record.run_id = record.compute_id()
    again = RunRecord.from_dict(json.loads(record.to_json()))
    assert again.to_dict() == record.to_dict()
    assert again.compute_id() == record.run_id


def test_from_dict_rejects_foreign_schema():
    data = make_record().to_dict()
    data["schema"] = RECORD_SCHEMA + 1
    with pytest.raises(ValueError, match="schema"):
        RunRecord.from_dict(data)


def test_corpus_digest_is_order_independent_and_content_sensitive():
    digest = corpus_digest_of({"a": "x", "b": "y"})
    assert digest == corpus_digest_of({"b": "y", "a": "x"})
    assert digest != corpus_digest_of({"a": "x", "b": "z"})
    # An app that failed before its APK digest existed still counts.
    assert corpus_digest_of({"a": None}) != corpus_digest_of({})


def test_default_registry_dir_env_override(monkeypatch, tmp_path):
    monkeypatch.setenv("FRAGDROID_RUNS_DIR", str(tmp_path / "runs"))
    assert default_registry_dir() == tmp_path / "runs"
    monkeypatch.delenv("FRAGDROID_RUNS_DIR")
    assert default_registry_dir().name == "runs"


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

def test_coverage_from_rows_counts_failures_but_not_their_coverage():
    rows = [
        {"package": "a", "ok": True, "activities_visited": 3,
         "activities_sum": 4, "fragments_visited": 1, "fragments_sum": 2,
         "apis": 5, "events": 10, "crashes": 0},
        {"package": "b", "ok": False, "activities_visited": 9,
         "activities_sum": 9},
    ]
    coverage = coverage_from_rows(rows)
    assert coverage["apps_total"] == 2
    assert coverage["apps_ok"] == 1
    assert coverage["activities_visited"] == 3
    assert coverage["mean_activity_rate"] == 0.75
    assert coverage["mean_fragment_rate"] == 0.5


def test_config_fingerprint_covers_semantics_not_vehicles():
    fingerprint = config_fingerprint(FragDroidConfig())
    assert fingerprint["enable_reflection"] is True
    assert fingerprint["max_events"] == FragDroidConfig().max_events
    assert "tracer" not in fingerprint
    assert "run_registry" not in fingerprint
    with_inputs = config_fingerprint(
        FragDroidConfig(input_values={"user": "alice"}))
    assert "input_values_digest" in with_inputs
    assert "alice" not in json.dumps(with_inputs)
    assert config_fingerprint(None) == {}


def test_capture_run_record_with_tracer_records_phases_and_counters():
    tracer = Tracer()
    config = FragDroidConfig(tracer=tracer)
    plans = [plan_for("org.rbc.odb")]
    apps = [{"package": "org.rbc.odb", "ok": True,
             "activities_visited": 4, "activities_sum": 5,
             "fragments_visited": 2, "fragments_sum": 3,
             "apis": 7, "events": 40, "crashes": 0}]
    explore_many(plans, config=config, max_workers=1)
    record = capture_run_record("sweep", config=config, apps=apps,
                                meta={"backend": "thread"})
    assert record.counters["sweep.apps"] == 1
    assert "sweep.app" in record.phases
    stats = record.phases["sweep.app"]
    assert stats["count"] == 1
    assert stats["self_total_s"] > 0
    assert stats["self_p50_ms"] <= stats["self_p90_ms"] <= stats["self_p99_ms"]
    assert record.coverage["mean_activity_rate"] == 0.8
    assert record.meta["backend"] == "thread"
    assert record.meta["created"] > 0
    assert record.run_id == record.compute_id()


def test_capture_run_record_unobserved_config_stays_lean():
    record = capture_run_record("sweep", config=FragDroidConfig(),
                                apps=[{"package": "a", "ok": True}])
    assert record.counters == {}
    assert record.phases == {}
    assert record.timeline == {}


def test_explore_many_auto_records_into_the_registry(tmp_path):
    registry = RunRegistry(tmp_path)
    config = FragDroidConfig(run_registry=registry)
    plans = [plan_for(p) for p in ("org.rbc.odb", "com.happy2.bbmanga")]
    explore_many(plans, config=config, max_workers=2, backend="thread")
    records = registry.list()
    assert len(records) == 1
    record = records[0]
    assert record.label == "sweep"
    assert [row["package"] for row in record.apps] == [
        "com.happy2.bbmanga", "org.rbc.odb"]
    assert record.corpus_digest
    assert record.meta["backend"] == "thread"
    # The same sweep again appends a second record (per-app durations
    # differ run to run) whose measurements agree with the first.
    explore_many(plans, config=config, max_workers=2, backend="thread")
    first, second = registry.list()
    assert second.coverage == first.coverage
    assert second.corpus_digest == first.corpus_digest


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

def test_record_load_and_prefix_lookup(tmp_path):
    registry = RunRegistry(tmp_path)
    record = make_record()
    run_id = registry.record(record)
    assert registry.load(run_id).to_dict() == record.to_dict()
    assert registry.load(run_id[:6]).run_id == run_id
    with pytest.raises(KeyError, match="no run record"):
        registry.load("0" * 16)


def test_ambiguous_prefix_raises(tmp_path):
    registry = RunRegistry(tmp_path)
    a = registry.record(make_record(label="a"))
    b = registry.record(make_record(label="b"))
    common = ""  # the empty prefix matches both
    with pytest.raises(KeyError, match="ambiguous"):
        registry.load(common)
    assert sorted(registry.ids()) == sorted([a, b])


def test_corrupt_and_truncated_records_skip_with_warning(tmp_path):
    registry = RunRegistry(tmp_path)
    good = registry.record(make_record())
    (tmp_path / "deadbeef00000000.json").write_text("{not json",
                                                    encoding="utf-8")
    (tmp_path / "cafecafe00000000.json").write_text("", encoding="utf-8")
    foreign = make_record(label="future").to_dict()
    foreign["schema"] = RECORD_SCHEMA + 7
    (tmp_path / "feedface00000000.json").write_text(json.dumps(foreign),
                                                    encoding="utf-8")
    with pytest.warns(RuntimeWarning, match="skipping unreadable"):
        records = registry.list()
    assert [r.run_id for r in records] == [good]
    assert sorted(name for name, _ in registry.skipped) == [
        "cafecafe00000000.json", "deadbeef00000000.json",
        "feedface00000000.json"]


def test_concurrent_record_is_atomic(tmp_path):
    registry = RunRegistry(tmp_path)
    records = [make_record(label=f"run-{i}", created=float(i))
               for i in range(8)]

    def hammer(record):
        for _ in range(10):
            RunRegistry(tmp_path).record(record)

    threads = [threading.Thread(target=hammer, args=(r,)) for r in records]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    loaded = registry.list()  # would warn on any torn write
    assert {r.run_id for r in loaded} == {r.run_id for r in records}
    assert registry.skipped == []
    assert not list(tmp_path.glob(".tmp-*"))  # no temp-file litter


def test_latest_returns_newest_oldest_first(tmp_path):
    registry = RunRegistry(tmp_path)
    for i in range(4):
        registry.record(make_record(label=f"r{i}", created=float(i)))
    labels = [r.label for r in registry.latest(2)]
    assert labels == ["r2", "r3"]
    assert registry.latest(0) == []
    assert len(registry.latest(99)) == 4


def test_gc_keeps_newest_and_never_deletes_the_pinned_baseline(tmp_path):
    registry = RunRegistry(tmp_path)
    ids = [registry.record(make_record(label=f"r{i}", created=float(i)))
           for i in range(5)]
    registry.pin(ids[0])  # pin the *oldest* record
    assert registry.pinned() == ids[0]
    removed = registry.gc(keep=2)
    assert set(removed) == set(ids[1:3])
    survivors = set(registry.ids())
    assert ids[0] in survivors  # pinned survived despite its age
    assert set(ids[3:]) <= survivors
    # The pin marker never shows up as a record.
    assert (tmp_path / PIN_FILE).is_file()
    assert PIN_FILE not in {f"{i}.json" for i in survivors}
    with pytest.raises(ValueError):
        registry.gc(keep=-1)
    # keep=0 removes everything except the pin.
    registry.gc(keep=0)
    assert registry.ids() == [ids[0]]


def test_pin_accepts_prefixes_and_missing_ids_fail(tmp_path):
    registry = RunRegistry(tmp_path)
    run_id = registry.record(make_record())
    assert registry.pin(run_id[:8]) == run_id
    with pytest.raises(KeyError):
        registry.pin("0" * 16)
    assert RunRegistry(tmp_path / "absent").pinned() is None


# ---------------------------------------------------------------------------
# Bench ingestion
# ---------------------------------------------------------------------------

def test_ingest_bench_flattens_numeric_leaves(tmp_path):
    result = tmp_path / "chaos.json"
    result.write_text(json.dumps({
        "schema": 1,
        "bench": "chaos",
        "data": {
            "mild": {"apps_ok": 15, "mean_activity_rate": 0.7,
                     "label": "not-a-number", "flag": True},
            "seconds": 2.5,
        },
    }), encoding="utf-8")
    registry = RunRegistry(tmp_path / "runs")
    record = registry.ingest_bench(result)
    assert record.label == "bench:chaos"
    assert record.coverage == {"mild.apps_ok": 15.0,
                               "mild.mean_activity_rate": 0.7,
                               "seconds": 2.5}
    assert record.meta["source"] == "chaos.json"
    assert registry.load(record.run_id).label == "bench:chaos"


def test_ingest_bench_rejects_non_bench_files(tmp_path):
    bad = tmp_path / "other.json"
    bad.write_text(json.dumps({"numbers": [1, 2]}), encoding="utf-8")
    with pytest.raises(ValueError, match="not a bench result"):
        RunRegistry(tmp_path / "runs").ingest_bench(bad)
