"""Shared observability across a parallel sweep.

One Tracer and one EventLog, each draining to a JsonlSink, shared by
every ``explore_many`` worker: the JSONL streams must stay well-formed
(no interleaved half-lines) and complete (every span and event emitted
lands on disk exactly once)."""

import json

from repro import FragDroidConfig
from repro.bench.parallel import explore_many, unwrap_results
from repro.corpus import TABLE1_PLANS
from repro.obs import EventLog, JsonlSink, Tracer, read_events, read_spans

PLANS = TABLE1_PLANS[:4]


def test_concurrent_workers_share_one_jsonl_record(tmp_path):
    span_path = tmp_path / "spans.jsonl"
    event_path = tmp_path / "events.jsonl"
    tracer = Tracer(sinks=[JsonlSink(span_path)])
    event_log = EventLog(sinks=[JsonlSink(event_path)])
    config = FragDroidConfig(tracer=tracer, event_log=event_log)

    outcomes = explore_many(PLANS, config=config, max_workers=4)
    results = unwrap_results(outcomes)
    tracer.close()
    event_log.close()
    assert len(results) == len(PLANS)

    # Every line parses on its own — concurrent emits never interleave.
    for path in (span_path, event_path):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            json.loads(line), f"{path}:{lineno}"

    # Complete: the file holds exactly what the collectors recorded.
    spans = read_spans(span_path)
    assert len(spans) == len(tracer.finished_spans())
    events = read_events(event_path)
    assert len(events) == len(event_log.events())

    # Sequence numbers are unique and gap-free across all workers.
    seqs = sorted(e.seq for e in events)
    assert seqs == list(range(1, len(events) + 1))

    # Each app's slice is recoverable from the shared stream and
    # matches what its own result carried.
    for package, result in results.items():
        app_events = [e for e in events if e.app == package]
        assert len(app_events) == len(result.events)
        assert [e.seq for e in app_events] == [e.seq for e in result.events]
        assert sum(1 for e in app_events if e.kind == "run.start") == 1
        assert sum(1 for e in app_events if e.kind == "run.end") == 1
