"""The HTML run dashboard: single-run and fleet rendering."""

from html.parser import HTMLParser

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.core.artifacts import save_artifacts
from repro.corpus import build_table1_app, table1_packages
from repro.obs import (
    EventLog,
    Tracer,
    coverage_timeline,
    load_run,
    render_dashboard,
    render_dashboard_dir,
)
from repro.obs.dashboard import fleet_rows, render_fleet_table

_VOID_TAGS = {"meta", "line", "circle", "path", "polyline", "polygon",
              "br", "hr", "img", "link", "input"}


class _WellFormedChecker(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.stack = []

    def handle_starttag(self, tag, attrs):
        if tag not in _VOID_TAGS:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in _VOID_TAGS:
            return
        assert self.stack and self.stack[-1] == tag, \
            f"misnested </{tag}> over {self.stack[-5:]}"
        self.stack.pop()


def _assert_well_formed(html_text):
    checker = _WellFormedChecker()
    checker.feed(html_text)
    assert not checker.stack, f"unclosed tags: {checker.stack}"


def _recorded_run(tmp_path, package=None):
    package = package or table1_packages()[0]
    config = FragDroidConfig(tracer=Tracer(), event_log=EventLog())
    result = FragDroid(Device(), config).explore(
        build_apk(build_table1_app(package))
    )
    run_dir = tmp_path / package
    save_artifacts(result, run_dir)
    return result, run_dir


def test_dashboard_renders_recorded_run(tmp_path):
    result, run_dir = _recorded_run(tmp_path)
    html_text = render_dashboard(load_run(run_dir))
    _assert_well_formed(html_text)
    assert result.package in html_text
    assert "Coverage over time" in html_text
    assert "Phase timing" in html_text
    assert "Critical path" in html_text
    assert "prefers-color-scheme: dark" in html_text
    assert "<script" not in html_text  # self-contained, zero JS


def test_dashboard_checkpoint_table_matches_coverage_timeline(tmp_path):
    result, run_dir = _recorded_run(tmp_path)
    html_text = render_dashboard(load_run(run_dir))
    points = coverage_timeline(result.events)
    for point in points:
        row = (f"<tr><td class=num>{point.step}</td>"
               f"<td class=num>{point.activities}</td>"
               f"<td class=num>{point.fragments}</td>"
               f"<td class=num>{point.fivas}</td>"
               f"<td class=num>{point.apis}</td></tr>")
        assert row in html_text
    assert f"({len(points)} points)" in html_text


def test_dashboard_without_event_log_degrades_gracefully(tmp_path):
    result = FragDroid(Device()).explore(
        build_apk(build_table1_app(table1_packages()[0]))
    )
    run_dir = tmp_path / "plain"
    save_artifacts(result, run_dir)
    html_text = render_dashboard_dir(run_dir)
    _assert_well_formed(html_text)
    assert "--events-jsonl" in html_text  # points at the opt-in flag


def test_fleet_dashboard_over_run_directories(tmp_path):
    packages = table1_packages()[:2]
    for package in packages:
        _recorded_run(tmp_path, package)
    html_text = render_dashboard_dir(tmp_path)
    _assert_well_formed(html_text)
    assert "fleet" in html_text
    assert "Per-app results (2 apps)" in html_text
    for package in packages:
        assert package in html_text


def test_fleet_table_renders_sweep_rows():
    from repro.bench.parallel import explore_many, sweep_rows
    from repro.corpus import TABLE1_PLANS

    outcomes = explore_many(TABLE1_PLANS[:2], max_workers=2)
    rows = sweep_rows(outcomes)
    assert [row["package"] for row in rows] == sorted(outcomes)
    assert all(row["ok"] for row in rows)
    assert all(row["duration_s"] > 0 for row in rows)
    html_text = render_fleet_table(rows)
    _assert_well_formed(html_text)
    for row in rows:
        assert row["package"] in html_text


def test_fleet_rows_carry_failures():
    from repro.bench.parallel import SweepOutcome, sweep_rows

    outcomes = {"com.dead": SweepOutcome(
        package="com.dead", error=RuntimeError("boom"),
        duration=0.5, fault_kind="crash",
    )}
    (row,) = sweep_rows(outcomes)
    assert row["ok"] is False
    assert row["fault_kind"] == "crash"
    assert "failed: crash" in render_fleet_table([row])


def test_dashboard_dir_rejects_non_run_directories(tmp_path):
    with pytest.raises(FileNotFoundError):
        render_dashboard_dir(tmp_path)


def test_trend_section_over_registry_records():
    from repro.obs import RunRecord, render_trend_section

    def record(rate, apis, created):
        r = RunRecord(label="sweep",
                      coverage={"mean_activity_rate": rate,
                                "mean_fragment_rate": rate - 0.1,
                                "apis": apis},
                      phases={"explore": {"count": 1,
                                          "self_total_s": 1.0}},
                      meta={"created": created})
        r.run_id = r.compute_id()
        return r

    records = [record(0.7, 100, 1.0), record(0.75, 110, 2.0),
               record(0.72, 120, 3.0)]
    html = render_trend_section(records)
    assert "Run trend (last 3 runs)" in html
    assert "Mean activity rate" in html
    assert "polyline" in html
    for r in records:
        assert r.run_id[:10] in html

    # Fewer than two records: a note, not a chart.
    assert "polyline" not in render_trend_section(records[:1])
    assert render_trend_section([]) != ""


# ---------------------------------------------------------------------------
# The service (job fleet) view
# ---------------------------------------------------------------------------

def _job(job_id, state="done", created=100.0, started=100.5,
         finished=102.0, **kwargs):
    from repro.serve import Job

    job = Job(job_id=job_id, apps=kwargs.pop("apps", ("com.a",)),
              created=created, started=started, finished=finished,
              state=state, **kwargs)
    return job


def test_service_rows_derive_latencies_from_the_lifecycle():
    from repro.obs import service_rows

    done = _job("aaa", trace_id=9)
    done.completed = {"com.a": {"ok": False, "error": "boom"}}
    done.attempts = {"com.a": 1}
    queued = _job("bbb", state="submitted", created=101.0,
                  started=0.0, finished=0.0)
    rows = service_rows([queued, done])  # sorted oldest-first
    assert [row["job_id"] for row in rows] == ["aaa", "bbb"]
    first, second = rows
    assert first["queue_wait_s"] == 0.5
    assert first["run_s"] == 1.5
    assert first["failed"] == 1
    assert first["worker_deaths"] == 1
    assert first["trace_id"] == 9
    assert second["queue_wait_s"] is None and second["run_s"] is None


def test_queue_depth_series_steps_through_arrivals_and_pickups():
    from repro.obs import queue_depth_series

    jobs = [
        _job("aaa", created=100.0, started=101.0, finished=103.0),
        _job("bbb", created=100.5, started=102.0, finished=104.0),
        # Cancelled before it started: leaves the queue at `finished`.
        _job("ccc", state="cancelled", created=100.5, started=0.0,
             finished=102.5),
    ]
    points = queue_depth_series(jobs)
    assert points[0] == (0.0, 1)
    assert (0.5, 3) in points  # two arrivals share one timestamp
    assert points[-1][1] == 0  # everyone left the queue
    assert max(depth for _, depth in points) == 3
    assert queue_depth_series([]) == []


def test_service_dashboard_renders_jobs_and_adversity(tmp_path):
    from repro.obs import render_service_dashboard

    healthy = _job("aaa", trace_id=3)
    healthy.completed = {"com.a": {"ok": True}}
    bruised = _job("bbb", created=100.2, started=101.0, finished=104.0)
    bruised.completed = {"com.a": {"ok": False, "error": "boom"}}
    bruised.attempts = {"com.a": 2}
    bruised.quarantined = ["com.a"]
    html = render_service_dashboard([healthy, bruised],
                                    tmp_path / "journal")
    _assert_well_formed(html)
    assert "Service fleet" in html
    assert "Queue depth over time" in html
    assert "Jobs (2)" in html
    assert "Adversity timeline" in html
    assert "aaa" in html and "bbb" in html
    assert "<script" not in html  # self-contained like the run view


def test_service_dashboard_without_jobs_is_an_empty_state(tmp_path):
    from repro.obs import render_service_section, render_service_dashboard

    assert "repro jobs submit" in render_service_section([])
    html = render_service_dashboard([], tmp_path / "journal")
    _assert_well_formed(html)


def test_adversity_timeline_annotates_registry_records():
    from repro.obs.dashboard import _adversity_timeline

    job = _job("aaa")
    job.attempts = {"com.a": 1}

    class FakeRecord:
        meta = {"job_id": "aaa",
                "degradation": {"worker_deaths": 1}}

    timeline = _adversity_timeline([job], [FakeRecord()])
    assert "aaa" in timeline and "yes" in timeline
    # A healthy fleet renders the empty state, not an empty table.
    assert "healthy" in _adversity_timeline([_job("bbb")], None)


def test_dashboard_threads_trend_history_through(tmp_path):
    from repro.obs import RunRecord

    _, run_dir = _recorded_run(tmp_path)
    history = []
    for i in range(2):
        r = RunRecord(label="sweep",
                      coverage={"mean_activity_rate": 0.6 + i / 10,
                                "apis": 50 + i},
                      meta={"created": float(i)})
        r.run_id = r.compute_id()
        history.append(r)
    html = render_dashboard(load_run(run_dir), history=history)
    _assert_well_formed(html)
    assert "Run trend (last 2 runs)" in html
