"""Spans: nesting, attributes, thread isolation, the null tracer."""

import threading

import pytest

from repro.obs import NULL_TRACER, InMemorySink, NullTracer, Tracer


def test_span_records_duration_and_attributes():
    tracer = Tracer()
    with tracer.span("phase", app="com.example") as span:
        span.set_attribute("items", 3)
    (finished,) = tracer.finished_spans()
    assert finished.name == "phase"
    assert finished.duration >= 0
    assert finished.attributes == {"app": "com.example", "items": 3}


def test_span_nesting_builds_parent_child_structure():
    tracer = Tracer()
    with tracer.span("outer") as outer:
        with tracer.span("middle") as middle:
            with tracer.span("inner") as inner:
                pass
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["outer"].parent_id is None
    assert spans["outer"].depth == 0
    assert spans["middle"].parent_id == outer.span_id
    assert spans["middle"].depth == 1
    assert spans["inner"].parent_id == middle.span_id
    assert spans["inner"].depth == 2
    # All three share the root's trace.
    assert {s.trace_id for s in spans.values()} == {outer.trace_id}
    assert inner.trace_id == outer.span_id
    # Children finish before parents, and nested durations are contained.
    order = [s.name for s in tracer.finished_spans()]
    assert order == ["inner", "middle", "outer"]
    assert spans["outer"].duration >= spans["middle"].duration


def test_sibling_spans_share_trace_but_not_parentage():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
    spans = {s.name: s for s in tracer.finished_spans()}
    assert spans["a"].parent_id == root.span_id
    assert spans["b"].parent_id == root.span_id
    assert spans["a"].span_id != spans["b"].span_id
    assert tracer.spans_in_trace(root.trace_id) == tracer.finished_spans()


def test_exception_is_recorded_and_propagated():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("failing"):
            raise ValueError("boom")
    (span,) = tracer.finished_spans()
    assert "boom" in span.attributes["error"]


def test_threads_get_independent_traces():
    tracer = Tracer()

    def work(name):
        with tracer.span(name):
            pass

    threads = [threading.Thread(target=work, args=(f"t{i}",))
               for i in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    spans = tracer.finished_spans()
    assert len(spans) == 4
    # Each thread's span is its own root: distinct traces, no parents.
    assert all(s.parent_id is None for s in spans)
    assert len({s.trace_id for s in spans}) == 4


def test_sinks_receive_finished_spans():
    sink = InMemorySink()
    tracer = Tracer(sinks=[sink])
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    assert [s.name for s in sink.spans] == ["b", "a"]


def test_clear_resets_spans_and_metrics():
    tracer = Tracer()
    with tracer.span("x"):
        tracer.inc("n")
    tracer.clear()
    assert tracer.finished_spans() == []
    assert tracer.metrics.counter("n") == 0


def test_null_tracer_records_nothing():
    tracer = NullTracer()
    with tracer.span("anything", app="x") as span:
        span.set_attribute("ignored", 1)
        tracer.inc("counter")
        tracer.observe("histogram", 5)
    assert tracer.finished_spans() == []
    assert tracer.metrics.counter("counter") == 0
    assert tracer.metrics.histogram("histogram") == ()
    assert not tracer.enabled


def test_null_tracer_is_reentrant_singleton():
    with NULL_TRACER.span("a") as outer:
        with NULL_TRACER.span("b") as inner:
            pass
    # One shared no-op span: no allocation per call.
    assert outer is inner
    assert NULL_TRACER.span("x") is NULL_TRACER.span("y")
