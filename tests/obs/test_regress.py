"""The deterministic regression gate (repro.obs.regress)."""

import json

from repro import FragDroidConfig
from repro.bench.parallel import explore_many
from repro.corpus.table1_apps import plan_for
from repro.obs import (
    RegressionPolicy,
    RunRecord,
    RunRegistry,
    check_regression,
)


def record(**overrides):
    r = RunRecord(label=overrides.pop("label", "sweep"), **overrides)
    r.run_id = r.compute_id()
    return r


def baseline_record():
    return record(
        config={"max_events": 8000},
        corpus_digest="aaa",
        coverage={"mean_activity_rate": 0.8, "mean_fragment_rate": 0.6,
                  "activities_visited": 40, "fragments_visited": 20,
                  "apis": 100},
        phases={"explore": {"count": 5, "self_total_s": 6.0},
                "static": {"count": 5, "self_total_s": 3.0},
                "tiny": {"count": 1, "self_total_s": 0.1}},
    )


def test_identical_records_pass():
    base = baseline_record()
    report = check_regression(base, base)
    assert report.ok and report.exit_code == 0
    assert report.violations == []
    assert "PASS" in report.render_text()


def test_coverage_drop_beyond_threshold_fails():
    base = baseline_record()
    cand = baseline_record()
    cand.coverage["mean_activity_rate"] = 0.7  # -12.5%
    report = check_regression(base, cand)
    assert not report.ok and report.exit_code == 1
    (violation,) = report.violations
    assert violation.kind == "coverage"
    assert violation.key == "mean_activity_rate"
    assert "FAIL (1 violation)" in report.render_text()
    # Within the 10% band the same move passes.
    cand.coverage["mean_activity_rate"] = 0.75
    assert check_regression(base, cand).ok
    # A *gain* never fails.
    cand.coverage["mean_activity_rate"] = 0.95
    assert check_regression(base, cand).ok


def test_missing_candidate_coverage_reads_as_zero():
    base = baseline_record()
    cand = baseline_record()
    del cand.coverage["apis"]
    report = check_regression(base, cand)
    assert [v.key for v in report.violations] == ["apis"]
    assert report.violations[0].candidate == 0.0


def test_phase_time_gates_on_share_not_seconds():
    base = baseline_record()
    cand = baseline_record()
    # The whole run slowing down uniformly (same shares) is fine — the
    # gate must hold across machines of different speeds.
    cand.phases = {name: {**stats,
                          "self_total_s": stats["self_total_s"] * 3}
                   for name, stats in base.phases.items()}
    assert check_regression(base, cand).ok
    # One phase ballooning relative to the rest is a regression.
    cand = baseline_record()
    cand.phases["static"]["self_total_s"] = 9.0
    report = check_regression(base, cand)
    assert [v.kind for v in report.violations] == ["phase_time"]
    assert report.violations[0].key == "static"


def test_tiny_phases_are_ignored():
    base = baseline_record()
    cand = baseline_record()
    # "tiny" holds ~1% of the baseline self time: even a 10x blowup in
    # it stays under min_phase_share and never gates.
    cand.phases["tiny"]["self_total_s"] = 1.0
    assert check_regression(base, cand).ok


def test_comparability_gates_unless_relaxed():
    base = baseline_record()
    cand = baseline_record()
    cand.config = {"max_events": 4000}
    cand.corpus_digest = "bbb"
    report = check_regression(base, cand)
    assert {v.key for v in report.violations} == {"config", "corpus"}
    assert all(v.kind == "comparability" for v in report.violations)
    relaxed = RegressionPolicy(require_same_config=False,
                               require_same_corpus=False)
    report = check_regression(base, cand, relaxed)
    assert report.ok
    assert len(report.warnings) == 2


def test_memory_warns_by_default_and_gates_on_request():
    base = baseline_record()
    base.phases["static"]["mem_peak_kb"] = 100.0
    cand = baseline_record()
    cand.phases["static"]["mem_peak_kb"] = 190.0  # +90%
    report = check_regression(base, cand)
    assert report.ok  # warn-only by default
    assert any("memory static" in w for w in report.warnings)
    gated = check_regression(base, cand,
                             RegressionPolicy(max_memory_increase=0.5))
    assert not gated.ok
    assert gated.violations[0].kind == "memory"
    # Under the gate's limit: neither violation nor warning.
    cand.phases["static"]["mem_peak_kb"] = 120.0
    report = check_regression(base, cand,
                              RegressionPolicy(max_memory_increase=0.5))
    assert report.ok and report.warnings == []


def test_report_is_json_ready():
    base = baseline_record()
    cand = baseline_record()
    cand.coverage["apis"] = 10
    report = check_regression(base, cand)
    data = json.loads(json.dumps(report.to_dict()))
    assert data["ok"] is False
    assert data["violations"][0]["kind"] == "coverage"
    assert "coverage drop" in data["policy"]


def test_verdict_is_deterministic_across_sweep_backends(tmp_path):
    """The acceptance property: the same sweep on the thread and the
    process backend yields records the gate judges identically."""
    plans = [plan_for(p) for p in ("org.rbc.odb", "com.happy2.bbmanga",
                                   "net.aviascanner.aviascanner")]
    records = {}
    for backend in ("thread", "process"):
        registry = RunRegistry(tmp_path / backend)
        config = FragDroidConfig(run_registry=registry)
        explore_many(plans, config=config, max_workers=2, backend=backend)
        (records[backend],) = registry.list()
    thread, process = records["thread"], records["process"]
    assert thread.coverage == process.coverage
    assert thread.corpus_digest == process.corpus_digest
    assert thread.config == process.config
    for base, cand in ((thread, process), (process, thread)):
        report = check_regression(base, cand)
        assert report.ok and report.exit_code == 0


def replay_record(diverged=0.0):
    return record(
        label="replay:com.app",
        coverage={"replay_scripts": 5.0, "replay_diverged": diverged,
                  "replay_events": 20.0, "replay_applied": 20.0 - diverged,
                  "activities_visited": 3, "fragments_visited": 2},
    )


def test_replay_divergence_is_gated_absolutely():
    """Divergence on an unchanged app fails even when the baseline also
    diverged — the gate is absolute, not baseline-relative."""
    base = replay_record(diverged=2.0)
    cand = replay_record(diverged=1.0)
    report = check_regression(base, cand, RegressionPolicy(
        require_same_config=False, require_same_corpus=False))
    kinds = [v.kind for v in report.violations]
    assert "replay" in kinds
    violation = next(v for v in report.violations if v.kind == "replay")
    assert violation.key == "replay_diverged"
    assert violation.candidate == 1.0
    assert report.exit_code == 1


def test_clean_replay_record_passes():
    base = replay_record()
    report = check_regression(base, base)
    assert report.ok


def test_replay_allowance_is_configurable():
    base = replay_record()
    cand = replay_record(diverged=1.0)
    policy = RegressionPolicy(max_replay_divergences=1,
                              require_same_config=False,
                              require_same_corpus=False)
    report = check_regression(base, cand, policy)
    assert not any(v.kind == "replay" for v in report.violations)
    assert "replay divergences <= 1" in policy.describe()
    assert "no replay divergences" in RegressionPolicy().describe()


def test_records_without_replay_counters_are_unaffected():
    base = baseline_record()
    report = check_regression(base, base)
    assert report.ok
    assert not any(v.kind == "replay" for v in report.violations)
