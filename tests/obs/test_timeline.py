"""Coverage-over-time analytics on synthetic and real flight records."""

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.core.artifacts import coverage_curve
from repro.corpus import build_table1_app, table1_packages
from repro.obs import (
    EventLog,
    coverage_timeline,
    discovery_stats,
    stalls,
    time_to_fraction,
)
from repro.obs.events import API_OBSERVED, RUN_END, STATE_DISCOVERED, Event


def _event(seq, kind, step, **attrs):
    return Event(seq=seq, kind=kind, step=step, attributes=attrs)


def _discovery_record():
    return [
        _event(1, STATE_DISCOVERED, 2, component="activity", name="A"),
        _event(2, API_OBSERVED, 3, api="net/openConnection"),
        _event(3, STATE_DISCOVERED, 5, component="fragment", name="F1",
               hosts=["A"]),
        _event(4, STATE_DISCOVERED, 9, component="fragment", name="F2",
               hosts=["B"]),
        _event(5, STATE_DISCOVERED, 11, component="activity", name="B"),
        _event(6, RUN_END, 80, termination="queue-drained"),
    ]


def test_coverage_timeline_checkpoints_and_fivas():
    points = coverage_timeline(_discovery_record())
    assert [p.to_dict() for p in points] == [
        {"step": 0, "activities": 0, "fragments": 0, "fivas": 0, "apis": 0},
        {"step": 2, "activities": 1, "fragments": 0, "fivas": 0, "apis": 0},
        # F1's host A is visited -> FIVA; the API at step 3 now counts.
        {"step": 5, "activities": 1, "fragments": 1, "fivas": 1, "apis": 1},
        # F2's host B is not visited yet -> not a FIVA.
        {"step": 9, "activities": 1, "fragments": 2, "fivas": 1, "apis": 1},
        # Visiting B promotes F2 to FIVA retroactively.
        {"step": 11, "activities": 2, "fragments": 2, "fivas": 2, "apis": 1},
    ]


def test_stalls_detects_plateaus_including_the_terminal_one():
    found = stalls(_discovery_record(), min_events=10)
    # Only one gap of >= 10 events: the terminal 11 -> 80 plateau.
    assert [(s.start_step, s.end_step, s.events) for s in found] == \
        [(11, 80, 69)]
    # At a lower threshold the longest plateau still sorts first.
    found = stalls(_discovery_record(), min_events=4)
    assert found[0].events == 69
    assert (found[1].start_step, found[1].end_step) == (5, 9)


def test_time_to_fraction_and_discovery_stats():
    points = coverage_timeline(_discovery_record())
    assert time_to_fraction(points, "activities", 0.5) == 2
    assert time_to_fraction(points, "activities", 0.9) == 11
    assert time_to_fraction(points, "fragments", 0.5) == 5
    stats = discovery_stats(_discovery_record())
    assert stats["activities_t50"] == 2
    assert stats["activities_t90"] == 11
    assert stats["apis_t50"] == 5  # first checkpoint with the API counted


def test_time_to_fraction_empty_series():
    assert time_to_fraction([], "activities", 0.5) is None
    points = coverage_timeline([_event(1, RUN_END, 10)])
    assert time_to_fraction(points, "apis", 0.5) is None


def test_event_curve_matches_trace_curve_on_a_real_run():
    # The acceptance invariant: the flight-recorder curve equals
    # artifacts.coverage_curve checkpoint for checkpoint.
    package = table1_packages()[0]
    config = FragDroidConfig(event_log=EventLog())
    result = FragDroid(Device(), config).explore(
        build_apk(build_table1_app(package))
    )
    assert result.events, "the enabled event log must populate the result"
    points = coverage_timeline(result.events)
    assert [(p.step, p.activities, p.fragments) for p in points] == \
        coverage_curve(result)
