"""Coverage-over-time analytics on synthetic and real flight records."""

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.core.artifacts import coverage_curve
from repro.corpus import build_table1_app, table1_packages
from repro.obs import (
    EventLog,
    coverage_timeline,
    discovery_stats,
    stalls,
    time_to_fraction,
)
from repro.obs.events import API_OBSERVED, RUN_END, STATE_DISCOVERED, Event


def _event(seq, kind, step, **attrs):
    return Event(seq=seq, kind=kind, step=step, attributes=attrs)


def _discovery_record():
    return [
        _event(1, STATE_DISCOVERED, 2, component="activity", name="A"),
        _event(2, API_OBSERVED, 3, api="net/openConnection"),
        _event(3, STATE_DISCOVERED, 5, component="fragment", name="F1",
               hosts=["A"]),
        _event(4, STATE_DISCOVERED, 9, component="fragment", name="F2",
               hosts=["B"]),
        _event(5, STATE_DISCOVERED, 11, component="activity", name="B"),
        _event(6, RUN_END, 80, termination="queue-drained"),
    ]


def test_coverage_timeline_checkpoints_and_fivas():
    points = coverage_timeline(_discovery_record())
    assert [p.to_dict() for p in points] == [
        {"step": 0, "activities": 0, "fragments": 0, "fivas": 0, "apis": 0},
        {"step": 2, "activities": 1, "fragments": 0, "fivas": 0, "apis": 0},
        # F1's host A is visited -> FIVA; the API at step 3 now counts.
        {"step": 5, "activities": 1, "fragments": 1, "fivas": 1, "apis": 1},
        # F2's host B is not visited yet -> not a FIVA.
        {"step": 9, "activities": 1, "fragments": 2, "fivas": 1, "apis": 1},
        # Visiting B promotes F2 to FIVA retroactively.
        {"step": 11, "activities": 2, "fragments": 2, "fivas": 2, "apis": 1},
    ]


def test_stalls_detects_plateaus_including_the_terminal_one():
    found = stalls(_discovery_record(), min_events=10)
    # Only one gap of >= 10 events: the terminal 11 -> 80 plateau.
    assert [(s.start_step, s.end_step, s.events) for s in found] == \
        [(11, 80, 69)]
    # At a lower threshold the longest plateau still sorts first.
    found = stalls(_discovery_record(), min_events=4)
    assert found[0].events == 69
    assert (found[1].start_step, found[1].end_step) == (5, 9)


def test_time_to_fraction_and_discovery_stats():
    points = coverage_timeline(_discovery_record())
    assert time_to_fraction(points, "activities", 0.5) == 2
    assert time_to_fraction(points, "activities", 0.9) == 11
    assert time_to_fraction(points, "fragments", 0.5) == 5
    stats = discovery_stats(_discovery_record())
    assert stats["activities_t50"] == 2
    assert stats["activities_t90"] == 11
    assert stats["apis_t50"] == 5  # first checkpoint with the API counted


def test_time_to_fraction_empty_series():
    assert time_to_fraction([], "activities", 0.5) is None
    points = coverage_timeline([_event(1, RUN_END, 10)])
    assert time_to_fraction(points, "apis", 0.5) is None


def test_zero_event_run_degenerates_to_the_origin():
    # A run that recorded nothing still yields a well-formed curve
    # (the origin point), no stalls, and all-None discovery stats.
    points = coverage_timeline([])
    assert [p.to_dict() for p in points] == [
        {"step": 0, "activities": 0, "fragments": 0, "fivas": 0, "apis": 0},
    ]
    assert stalls([]) == []
    stats = discovery_stats([])
    assert stats == {key: None for key in stats}


def test_single_checkpoint_curve_reaches_every_fraction_at_once():
    # One discovery and nothing else: every threshold of the series is
    # met at that single checkpoint's step; untouched series stay None.
    events = [_event(1, STATE_DISCOVERED, 7, component="activity",
                     name="A")]
    points = coverage_timeline(events)
    assert len(points) == 2
    for fraction in (0.1, 0.5, 0.9, 1.0):
        assert time_to_fraction(points, "activities", fraction) == 7
    assert time_to_fraction(points, "fragments", 0.5) is None
    # The only plateau is the lead-in (0 -> 7): nothing follows the
    # discovery, so there is no terminal stretch to count.
    assert [(s.start_step, s.end_step) for s in stalls(events,
                                                       min_events=1)] \
        == [(0, 7)]


def test_all_events_in_one_tick_only_stalls_on_the_lead_in():
    # Every event landing on the same step means zero-width gaps: the
    # only plateau left is the lead-in (0 -> 4), and raising the
    # threshold past it leaves nothing.
    events = [
        _event(1, STATE_DISCOVERED, 4, component="activity", name="A"),
        _event(2, STATE_DISCOVERED, 4, component="fragment", name="F",
               hosts=["A"]),
        _event(3, API_OBSERVED, 4, api="net/openConnection"),
        _event(4, RUN_END, 4, termination="queue-drained"),
    ]
    assert [(s.start_step, s.end_step) for s in stalls(events,
                                                       min_events=1)] \
        == [(0, 4)]
    assert stalls(events, min_events=5) == []
    points = coverage_timeline(events)
    assert [(p.step, p.activities, p.fragments, p.fivas) for p in points] \
        == [(0, 0, 0, 0), (4, 1, 0, 0), (4, 1, 1, 1)]
    stats = discovery_stats(events)
    assert stats["activities_t50"] == 4
    assert stats["fivas_t90"] == 4


def test_stall_threshold_boundary_is_inclusive():
    # A gap of exactly min_events counts; one event fewer does not.
    events = [
        _event(1, STATE_DISCOVERED, 10, component="activity", name="A"),
        _event(2, RUN_END, 20, termination="budget-exhausted"),
    ]
    assert [(s.start_step, s.end_step) for s in stalls(events,
                                                       min_events=10)] \
        == [(0, 10), (10, 20)]
    assert stalls(events, min_events=11) == []


def test_event_curve_matches_trace_curve_on_a_real_run():
    # The acceptance invariant: the flight-recorder curve equals
    # artifacts.coverage_curve checkpoint for checkpoint.
    package = table1_packages()[0]
    config = FragDroidConfig(event_log=EventLog())
    result = FragDroid(Device(), config).explore(
        build_apk(build_table1_app(package))
    )
    assert result.events, "the enabled event log must populate the result"
    points = coverage_timeline(result.events)
    assert [(p.step, p.activities, p.fragments) for p in points] == \
        coverage_curve(result)
