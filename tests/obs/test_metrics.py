"""Counters and histograms."""

import threading

from repro.obs import NULL_METRICS, Metrics, percentile


def test_counter_accumulation():
    metrics = Metrics()
    metrics.inc("clicks")
    metrics.inc("clicks")
    metrics.inc("events.injected", 50)
    assert metrics.counter("clicks") == 2
    assert metrics.counter("events.injected") == 50
    assert metrics.counter("never-touched") == 0
    assert metrics.counters() == {"clicks": 2, "events.injected": 50}


def test_histogram_stats():
    metrics = Metrics()
    for depth in (1, 4, 7):
        metrics.observe("queue.depth", depth)
    stats = metrics.histogram_stats("queue.depth")
    assert stats.count == 3
    assert stats.minimum == 1
    assert stats.maximum == 7
    assert stats.mean == 4
    assert metrics.histogram("queue.depth") == (1, 4, 7)
    empty = metrics.histogram_stats("missing")
    assert empty.count == 0 and empty.mean == 0.0


def test_histogram_quantiles_use_nearest_rank():
    metrics = Metrics()
    for value in range(1, 101):  # 1..100
        metrics.observe("latency", float(value))
    stats = metrics.histogram_stats("latency")
    assert (stats.p50, stats.p90, stats.p99) == (50.0, 90.0, 99.0)
    payload = stats.to_dict()
    assert payload["p50"] == 50.0 and payload["p99"] == 99.0

    single = Metrics()
    single.observe("h", 7.0)
    lone = single.histogram_stats("h")
    assert (lone.p50, lone.p90, lone.p99) == (7.0, 7.0, 7.0)


def test_percentile_is_the_shared_quantile_definition():
    # The one definition metrics, summary and the exporters share.
    assert percentile([], 0.5) == 0.0
    assert percentile([3.0], 0.99) == 3.0
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
    assert percentile([4.0, 1.0, 3.0, 2.0], 1.0) == 4.0  # unsorted input
    assert percentile([1.0, 2.0], 0.0) == 1.0

    from repro.obs.summary import percentile as reexported
    assert reexported is percentile


def test_snapshot_is_json_ready_and_detached():
    metrics = Metrics()
    metrics.inc("n", 2)
    metrics.observe("h", 3.0)
    snapshot = metrics.snapshot()
    metrics.inc("n")
    assert snapshot["counters"] == {"n": 2}
    assert snapshot["histograms"]["h"]["count"] == 1
    assert snapshot["histograms"]["h"]["mean"] == 3.0

    import json

    json.dumps(snapshot)  # must serialize cleanly


def test_thread_safety_under_contention():
    metrics = Metrics()

    def hammer():
        for _ in range(1000):
            metrics.inc("n")
            metrics.observe("h", 1)

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert metrics.counter("n") == 4000
    assert metrics.histogram_stats("h").count == 4000


def test_render_lists_counters_and_histograms():
    metrics = Metrics()
    metrics.inc("clicks", 3)
    metrics.observe("queue.depth", 2)
    text = metrics.render()
    assert "clicks" in text
    assert "queue.depth" in text


def test_null_metrics_drop_everything():
    NULL_METRICS.inc("x", 100)
    NULL_METRICS.observe("y", 1.0)
    assert NULL_METRICS.counters() == {}
    assert not NULL_METRICS.enabled


def test_merge_empty_is_a_noop():
    metrics = Metrics()
    metrics.inc("n", 2)
    metrics.merge({}, {})
    assert metrics.counters() == {"n": 2}
    assert metrics.snapshot()["histograms"] == {}


def test_merge_accumulates_overlapping_names():
    metrics = Metrics()
    metrics.inc("n", 2)
    metrics.observe("h", 1.0)
    metrics.merge({"n": 3, "m": 1}, {"h": [2.0, 3.0], "g": [5]})
    assert metrics.counters() == {"n": 5, "m": 1}
    assert metrics.histogram("h") == (1.0, 2.0, 3.0)
    assert metrics.histogram("g") == (5,)


def test_merge_into_self_doubles():
    metrics = Metrics()
    metrics.inc("n", 2)
    metrics.observe("h", 1.0)
    metrics.merge(metrics.counters(),
                  {"h": list(metrics.histogram("h"))})
    assert metrics.counter("n") == 4
    assert metrics.histogram("h") == (1.0, 1.0)


def test_merge_skips_invalid_histogram_values():
    metrics = Metrics()
    metrics.merge({}, {"h": [1.0, float("nan"), "oops", True, 2.0]})
    assert metrics.histogram("h") == (1.0, 2.0)
    assert metrics.counter("metrics.merge.skipped") == 3
