"""Structured diffs between run records (repro.obs.diff)."""

import json

from repro.obs import RecordDiff, RunRecord, diff_records
from repro.obs.diff import (
    APPEARED,
    SHIFTED,
    STEADY,
    VANISHED,
    Delta,
    diff_numeric,
)


def record(**overrides):
    r = RunRecord(label=overrides.pop("label", "sweep"), **overrides)
    r.run_id = r.compute_id()
    return r


# ---------------------------------------------------------------------------
# Delta semantics
# ---------------------------------------------------------------------------

def test_delta_statuses():
    assert Delta("k", None, 2.0).status == APPEARED
    assert Delta("k", 2.0, None).status == VANISHED
    assert Delta("k", 2.0, 2.0).status == STEADY
    assert Delta("k", 100.0, 100.5, tolerance=0.01).status == STEADY
    assert Delta("k", 100.0, 105.0, tolerance=0.01).status == SHIFTED
    # Exactly-zero baseline: no relative change, but a move off zero is
    # a shift, not noise.
    zero = Delta("k", 0.0, 3.0, tolerance=0.01)
    assert zero.rel is None
    assert zero.status == SHIFTED
    assert Delta("k", 100.0, 105.0).delta == 5.0
    assert Delta("k", None, 2.0).delta is None
    assert Delta("k", 100.0, 95.0).rel == -0.05


def test_diff_numeric_takes_the_key_union():
    deltas = diff_numeric({"a": 1.0, "b": 2.0}, {"b": 2.0, "c": 3.0})
    assert [(d.key, d.status) for d in deltas] == [
        ("a", VANISHED), ("b", STEADY), ("c", APPEARED)]


# ---------------------------------------------------------------------------
# Record diffs
# ---------------------------------------------------------------------------

def make_pair():
    baseline = record(
        config={"max_events": 8000},
        corpus_digest="aaa",
        apps=[{"package": "app.one", "activities_visited": 4,
               "activities_sum": 5, "fragments_visited": 2,
               "fragments_sum": 3, "apis": 7, "events": 40, "crashes": 0},
              {"package": "app.gone", "activities_visited": 1,
               "activities_sum": 1}],
        coverage={"mean_activity_rate": 0.8, "apis": 8.0},
        counters={"sweep.apps": 2.0, "faults.injected": 3.0},
        phases={"explore": {"count": 2, "self_total_s": 2.0},
                "static": {"count": 2, "self_total_s": 1.0,
                           "mem_peak_kb": 100.0}},
    )
    candidate = record(
        config={"max_events": 8000},
        corpus_digest="aaa",
        apps=[{"package": "app.one", "activities_visited": 3,
               "activities_sum": 5, "fragments_visited": 2,
               "fragments_sum": 3, "apis": 7, "events": 40, "crashes": 0},
              {"package": "app.new", "activities_visited": 2,
               "activities_sum": 2}],
        coverage={"mean_activity_rate": 0.6, "apis": 8.0},
        counters={"sweep.apps": 2.0, "retries": 1.0},
        phases={"explore": {"count": 2, "self_total_s": 2.0},
                "static": {"count": 2, "self_total_s": 1.4,
                           "mem_peak_kb": 180.0}},
    )
    return baseline, candidate


def test_diff_records_sections_and_statuses():
    baseline, candidate = make_pair()
    diff = diff_records(baseline, candidate)
    assert diff.comparable
    assert diff.notes == []

    changed = diff.changed()
    assert [d.key for d in changed["coverage"]] == ["mean_activity_rate"]
    assert {d.key: d.status for d in changed["counters"]} == {
        "faults.injected": VANISHED, "retries": APPEARED}
    assert {a.package: a.status for a in changed["apps"]} == {
        "app.gone": VANISHED, "app.new": APPEARED, "app.one": SHIFTED}
    assert [d.key for d in changed["phase_time"]] == ["static"]
    assert [(d.key, d.rel) for d in changed["phase_mem"]] == [
        ("static", 0.8)]


def test_diff_flags_incomparable_config_and_corpus():
    baseline, candidate = make_pair()
    candidate.config = {"max_events": 4000}
    candidate.corpus_digest = "bbb"
    diff = diff_records(baseline, candidate)
    assert not diff.comparable
    assert not diff.same_config and not diff.same_corpus
    assert any("max_events" in note for note in diff.notes)
    assert any("corpus digests differ" in note for note in diff.notes)
    # An empty digest on one side is "unknown", not a mismatch.
    candidate.corpus_digest = ""
    assert diff_records(baseline, candidate).same_corpus


def test_identical_records_render_as_no_changes():
    baseline, _ = make_pair()
    diff = diff_records(baseline, baseline)
    assert diff.changed() == {"coverage": [], "counters": [], "apps": [],
                              "phase_time": [], "phase_mem": []}
    assert "no changes outside tolerance" in diff.render_text()


def test_render_text_and_json_round_trip():
    baseline, candidate = make_pair()
    diff = diff_records(baseline, candidate)
    text = diff.render_text()
    assert f"vs baseline {baseline.run_id}" in text
    assert "mean_activity_rate" in text
    assert "-25.0%" in text  # 0.8 -> 0.6
    assert "app.gone" in text and "vanished" in text
    full = diff.render_text(changed_only=False)
    assert "apis" in full  # steady entries appear in the full rendering
    data = json.loads(json.dumps(diff.to_dict()))
    assert data["comparable"] is True
    assert isinstance(diff, RecordDiff)
