"""The pipeline emits the promised spans and counters when traced —
and nothing at all when not."""

from repro import Device, FragDroid, FragDroidConfig, build_apk
from repro.core.htmlreport import render_html_report
from repro.core.report import result_to_dict
from repro.corpus import build_table1_app, demo_tabbed_app
from repro.obs import Tracer


def _traced_result(app_spec, **config_kwargs):
    tracer = Tracer()
    config = FragDroidConfig(tracer=tracer, **config_kwargs)
    result = FragDroid(Device(), config).explore(build_apk(app_spec))
    return result, tracer


def test_explore_emits_phase_spans():
    result, _ = _traced_result(demo_tabbed_app())
    names = {s.name for s in result.spans}
    # Static extraction, per-algorithm spans.
    assert {"static.extract", "static.decode", "static.algorithm1.aftm",
            "static.algorithm2.dependency",
            "static.algorithm3.resource_dep"} <= names
    # Per-test-case and per-case spans.
    assert {"explore", "explorer.test_case", "explorer.case1",
            "explorer.case2", "explorer.case3"} <= names


def test_termination_reason_recorded():
    result, _ = _traced_result(demo_tabbed_app())
    (root,) = [s for s in result.spans if s.name == "explore"]
    assert root.attributes["termination"] == "queue-drained"

    starved, _ = _traced_result(demo_tabbed_app(), max_events=3)
    (root,) = [s for s in starved.spans if s.name == "explore"]
    assert root.attributes["termination"] == "budget-exhausted"


def test_counters_cover_the_event_taxonomy():
    result, tracer = _traced_result(
        build_table1_app("com.advancedprocessmanager")
    )
    counters = tracer.metrics.counters()
    assert counters["clicks"] > 0
    assert counters["events.injected"] == result.stats.events
    assert counters["reflection.switches"] > 0
    assert counters["adb.installs"] >= 1
    assert tracer.metrics.histogram_stats("queue.depth").count > 0
    assert result.metrics["counters"] == counters


def test_spans_nest_static_under_explore():
    result, _ = _traced_result(demo_tabbed_app())
    by_id = {s.span_id: s for s in result.spans}
    (root,) = [s for s in result.spans if s.name == "explore"]
    (static,) = [s for s in result.spans if s.name == "static.extract"]
    assert static.parent_id == root.span_id
    (decode,) = [s for s in result.spans if s.name == "static.decode"]
    assert by_id[decode.parent_id] is static


def test_untraced_run_keeps_reports_byte_identical():
    apk = build_apk(demo_tabbed_app())
    plain = FragDroid(Device()).explore(apk)
    assert plain.spans == [] and plain.metrics == {}
    report = result_to_dict(plain)
    assert "timing" not in report and "metrics" not in report
    assert "Per-phase timing" not in render_html_report(plain)


def test_traced_run_renders_timing_tables():
    result, _ = _traced_result(demo_tabbed_app())
    report = result_to_dict(result)
    assert report["timing"][0]["count"] >= 1
    assert {row["span"] for row in report["timing"]} >= {"explore",
                                                         "static.extract"}
    html = render_html_report(result)
    assert "Per-phase timing" in html
    assert "static.extract" in html


def test_parallel_sweep_produces_disjoint_traces():
    from repro.bench.parallel import explore_many
    from repro.corpus.table1_apps import plan_for

    tracer = Tracer()
    config = FragDroidConfig(tracer=tracer)
    plans = [plan_for("org.rbc.odb"), plan_for("com.happy2.bbmanga")]
    outcomes = explore_many(plans, config=config, max_workers=2)
    for package, outcome in outcomes.items():
        result = outcome.unwrap()
        assert result.spans, package
        # Every span the result carries belongs to this app alone.
        apps = {s.attributes.get("app") for s in result.spans
                if "app" in s.attributes}
        assert apps == {package}
    assert tracer.metrics.counter("sweep.apps") == 2
