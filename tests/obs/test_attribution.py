"""The coverage-attribution engine: a typed cause for every miss."""

import json

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.bench.parallel import SweepOutcome, explore_many
from repro.corpus import AppPlan, build_app
from repro.obs import (
    CoverageExplanation,
    EventLog,
    ExplanationStore,
    explain_outcomes,
    explain_result,
    fleet_cause_census,
    newly_unreached,
    render_explanation,
    top_blocking_widgets,
)
from repro.obs.attribution import (
    CAUSE_ACTION_DIVERGED,
    CAUSE_BLOCKED_BY_FAULT,
    CAUSE_FRONTIER_NEVER_EXPANDED,
    CAUSE_UNCLASSIFIED,
    CAUSE_WIDGET_NEVER_CLICKED,
    CAUSE_WORKER_DIED,
    CAUSES,
    EXPLANATION_SCHEMA,
)


def _explore(plan, **config_kwargs):
    config_kwargs.setdefault("event_log", EventLog())
    config = FragDroidConfig(**config_kwargs)
    return FragDroid(Device(), config).explore(build_apk(build_app(plan)))


# -- per-cause classification ------------------------------------------------

def test_fully_explored_app_explains_to_zero_misses():
    result = _explore(AppPlan("com.attr.clean", visited_activities=3,
                              visited_fragments=2))
    explanation = explain_result(result)
    assert explanation.targets == []
    assert explanation.cause_census == {}
    assert explanation.apps[0]["missed"] == 0


def test_login_locked_activity_is_action_diverged():
    result = _explore(AppPlan("com.attr.locked", visited_activities=2,
                              login_locked=1))
    explanation = explain_result(result)
    misses = explanation.miss_targets()
    locked = [m for m in misses if m.kind == "activity"]
    assert locked, "the locked activity must be a miss"
    for miss in locked:
        assert miss.cause == CAUSE_ACTION_DIVERGED
        assert miss.blocking_widget is not None
        assert miss.witness, "a reachable-in-principle miss has a witness"
        assert miss.nearest_visited is not None


def test_budget_exhaustion_is_frontier_never_expanded():
    result = _explore(AppPlan("com.attr.budget", visited_activities=6),
                      max_events=3)
    explanation = explain_result(result)
    frontier = [m for m in explanation.miss_targets()
                if m.cause == CAUSE_FRONTIER_NEVER_EXPANDED]
    assert frontier, "a starved run must blame the budget"
    for miss in frontier:
        assert miss.witness


def test_unbound_popup_listener_is_widget_never_clicked():
    result = _explore(AppPlan("com.attr.popup", visited_activities=2,
                              popup_locked=1))
    explanation = explain_result(result)
    popup = [m for m in explanation.miss_targets()
             if m.kind == "activity"]
    assert popup
    assert {m.cause for m in popup} == {CAUSE_WIDGET_NEVER_CLICKED}


def test_failed_outcomes_roll_up_to_one_app_target():
    outcomes = {
        "com.attr.dead": SweepOutcome(package="com.attr.dead",
                                      fault_kind="worker-died"),
        "com.attr.packed": SweepOutcome(package="com.attr.packed",
                                        fault_kind="packed"),
    }
    explanation = explain_outcomes(outcomes)
    by_package = {m.package: m for m in explanation.miss_targets()}
    assert by_package["com.attr.dead"].cause == CAUSE_WORKER_DIED
    assert by_package["com.attr.packed"].cause == CAUSE_BLOCKED_BY_FAULT
    assert all(not row["ok"] for row in explanation.apps)


def test_table1_corpus_has_zero_unclassified():
    config = FragDroidConfig(event_log=EventLog())
    outcomes = explore_many(config=config, max_workers=2)
    explanation = explain_outcomes(outcomes)
    assert explanation.targets, "the corpus leaves known coverage gaps"
    assert explanation.unclassified() == []
    assert CAUSE_UNCLASSIFIED not in explanation.cause_census


def test_explanations_are_byte_identical_across_backends():
    def sweep(backend):
        config = FragDroidConfig(event_log=EventLog())
        return explore_many(config=config, max_workers=2, backend=backend)

    threaded = explain_outcomes(sweep("thread"))
    processed = explain_outcomes(sweep("process"))
    assert threaded.to_json() == processed.to_json()
    assert threaded.explanation_id == processed.explanation_id


# -- the artifact ------------------------------------------------------------

def test_explanation_round_trips_and_is_content_addressed():
    result = _explore(AppPlan("com.attr.rt", visited_activities=2,
                              login_locked=1))
    explanation = explain_result(result, label="rt",
                                 source_run_id="feedc0de00000000",
                                 meta={"backend": "thread"})
    clone = CoverageExplanation.from_dict(
        json.loads(explanation.to_json()))
    assert clone.to_json() == explanation.to_json()
    assert clone.explanation_id == explanation.compute_id()
    # meta never feeds the content id.
    clone.meta["created"] = "2026-08-07"
    assert clone.compute_id() == explanation.compute_id()


def test_foreign_schema_is_rejected():
    data = {"schema": EXPLANATION_SCHEMA + 1, "targets": []}
    with pytest.raises(ValueError, match="schema"):
        CoverageExplanation.from_dict(data)


# -- the store ---------------------------------------------------------------

def _stored(tmp_path, run_id, label="a"):
    result = _explore(AppPlan(f"com.attr.store.{label}",
                              visited_activities=2, login_locked=1))
    explanation = explain_result(result, label=label, source_run_id=run_id)
    ExplanationStore(tmp_path).save(explanation)
    return explanation


def test_store_saves_and_loads_by_either_id(tmp_path):
    explanation = _stored(tmp_path, "aaaa000011112222")
    store = ExplanationStore(tmp_path)
    assert store.ids() == ["aaaa000011112222"]
    by_run = store.load("aaaa0000")
    assert by_run.to_json() == explanation.to_json()
    by_explanation = store.load(explanation.explanation_id[:8])
    assert by_explanation.to_json() == explanation.to_json()


def test_store_rejects_ambiguous_and_unknown_refs(tmp_path):
    _stored(tmp_path, "aaaa000011112222", label="a")
    _stored(tmp_path, "aaaa999911112222", label="b")
    store = ExplanationStore(tmp_path)
    with pytest.raises(KeyError, match="ambiguous"):
        store.load("aaaa")
    with pytest.raises(KeyError, match="no explanation"):
        store.load("ffff")
    with pytest.raises(ValueError, match="source_run_id"):
        store.save(CoverageExplanation())


# -- rendering ---------------------------------------------------------------

def test_render_lists_census_and_drills_into_one_target():
    result = _explore(AppPlan("com.attr.render", visited_activities=2,
                              login_locked=1))
    explanation = explain_result(result)
    text = render_explanation(explanation)
    assert "cause census:" in text
    assert CAUSE_ACTION_DIVERGED in text
    target = explanation.miss_targets()[0]
    drill = render_explanation(explanation, target=target.simple_name)
    assert "witness path:" in drill
    assert "--[" in drill
    assert "nearest visited ancestor:" in drill
    missing = render_explanation(explanation, target="NoSuchTarget")
    assert "not among the unreached targets" in missing


def test_render_top_truncates_with_a_hint():
    result = _explore(AppPlan("com.attr.top", visited_activities=2,
                              login_locked=2))
    explanation = explain_result(result)
    assert len(explanation.targets) > 1
    text = render_explanation(explanation, top=1)
    assert "more" in text and "--target" in text


# -- fleet aggregation and diffing -------------------------------------------

def test_fleet_census_and_top_blocking_widgets():
    locked = explain_result(_explore(AppPlan(
        "com.attr.fleet.a", visited_activities=2, login_locked=1)))
    popup = explain_result(_explore(AppPlan(
        "com.attr.fleet.b", visited_activities=2, popup_locked=1)))
    census = fleet_cause_census([locked, popup])
    assert census[CAUSE_ACTION_DIVERGED] >= 1
    assert census[CAUSE_WIDGET_NEVER_CLICKED] >= 1
    widgets = top_blocking_widgets([locked, popup])
    assert widgets and widgets[0][1] >= 1
    assert all(count >= 1 for _, count in widgets)


def test_newly_unreached_is_the_set_difference():
    baseline = explain_result(_explore(AppPlan(
        "com.attr.diff", visited_activities=2, login_locked=1)))
    candidate = explain_result(_explore(AppPlan(
        "com.attr.diff", visited_activities=2, login_locked=2)))
    fresh = newly_unreached(baseline, candidate)
    assert fresh, "the extra locked activity regressed"
    before = {(t.package, t.kind, t.name)
              for t in baseline.miss_targets()}
    assert all((t.package, t.kind, t.name) not in before for t in fresh)
    assert newly_unreached(candidate, candidate) == []


def test_cause_taxonomy_is_closed_and_ranked():
    assert CAUSES[-1] == CAUSE_UNCLASSIFIED
    assert len(set(CAUSES)) == len(CAUSES)
