"""Record & replay."""

import pytest

from repro.android import Device
from repro.apk import build_apk
from repro.errors import ReproError, WidgetNotFoundError
from repro.rnr import RecordedEvent, Recorder, ReplayScript
from tests.conftest import make_full_demo_spec


@pytest.fixture
def recorded(device, adb, demo_apk):
    adb.install(demo_apk)
    recorder = Recorder(device, demo_apk.package)
    recorder.launch()
    recorder.enter_text("password", "hunter2")
    recorder.click("btn_login")
    return recorder.script(), device


def test_recording_forwards_events(recorded):
    script, device = recorded
    assert device.current_activity_name() == "com.example.demo.VaultActivity"
    assert [e.kind for e in script.events] == ["launch", "text", "click"]


def test_replay_reaches_same_state(recorded):
    script, _ = recorded
    fresh = Device()
    fresh.install(build_apk(make_full_demo_spec()))
    applied = script.replay(fresh)
    assert applied == 3
    assert fresh.current_activity_name() == "com.example.demo.VaultActivity"


def test_script_json_round_trip(recorded):
    script, _ = recorded
    restored = ReplayScript.from_json(script.to_json())
    assert restored.package == script.package
    assert restored.events == script.events


def test_replay_breaks_when_ui_drifts(recorded):
    script, _ = recorded
    drifted = make_full_demo_spec()
    # The developer renamed the login button: the script is stale.
    main = drifted.activity("MainActivity")
    main.widgets = [
        w if w.id != "btn_login" else
        type(w)(id="btn_sign_in", text=w.text, on_click=w.on_click)
        for w in main.widgets
    ]
    fresh = Device()
    fresh.install(build_apk(drifted))
    with pytest.raises(WidgetNotFoundError):
        script.replay(fresh)


def test_recorded_drawer_and_back(device, adb, demo_apk):
    adb.install(demo_apk)
    recorder = Recorder(device, demo_apk.package)
    recorder.launch()
    recorder.swipe()
    recorder.click("nav_settings")
    recorder.back()
    fresh = Device()
    fresh.install(build_apk(make_full_demo_spec()))
    recorder.script().replay(fresh)
    assert fresh.current_activity_name() == "com.example.demo.MainActivity"


def test_unknown_event_kind_rejected():
    with pytest.raises(ReproError):
        RecordedEvent(kind="teleport")


def test_recorded_steps_are_pre_action_steps(device, adb, demo_apk):
    """The satellite bug: each event must carry the device step sampled
    *before* forwarding — a fresh-device recording is 0, 1, 2, ..."""
    adb.install(demo_apk)
    recorder = Recorder(device, demo_apk.package)
    recorder.launch()
    recorder.enter_text("password", "hunter2")
    recorder.click("btn_login")
    recorder.back()
    script = recorder.script()
    assert [e.step for e in script.events] == list(range(len(script.events)))
    # Post-action sampling would have read 1, 2, 3, 4 instead.
    assert script.events[0].step == 0


def test_recorded_step_matches_replay_position(device, adb, demo_apk):
    """The recorded step doubles as the replay index on a fresh device,
    so a divergence report can say which recorded step broke."""
    adb.install(demo_apk)
    recorder = Recorder(device, demo_apk.package)
    recorder.launch()
    recorder.swipe()
    recorder.click("nav_settings")
    script = recorder.script()
    fresh = Device()
    fresh.install(build_apk(make_full_demo_spec()))
    for event in script.events:
        assert event.step == fresh.steps
        script.apply_event(event, fresh)
