"""The synthetic app generator: structure and obstacle mechanics."""

import pytest

from repro.apk import build_apk
from repro.corpus.synth import AppPlan, LOGIN_SECRET, build_app
from repro.static import extract_static_info


def test_counts_match_plan():
    plan = AppPlan(package="com.synth.counts", visited_activities=4,
                   login_locked=1, popup_locked=2, navdrawer_locked=1,
                   navdrawer_forced=1, visited_fragments=5,
                   args_fragments=2, unmanaged_fragments=1,
                   hidden_fragments=3)
    spec = build_app(plan)
    assert len(spec.activities) == plan.total_activities == 9
    assert len(spec.fragments) == plan.total_fragments == 11


def test_static_sums_equal_plan_totals():
    plan = AppPlan(package="com.synth.sums", visited_activities=3,
                   login_locked=1, popup_locked=1,
                   visited_fragments=4, args_fragments=1,
                   hidden_fragments=2)
    info = extract_static_info(build_apk(build_app(plan)))
    assert len(info.activities) == plan.total_activities
    assert len(info.fragments) == plan.total_fragments


def test_deterministic_for_same_plan():
    plan = AppPlan(package="com.synth.det", visited_activities=3,
                   visited_fragments=2)
    first = build_apk(build_app(plan))
    second = build_apk(build_app(plan))
    assert first.manifest_xml == second.manifest_xml
    assert first.smali_files == second.smali_files
    assert first.layout_files == second.layout_files


def test_hidden_fragments_need_locked_host():
    with pytest.raises(ValueError):
        AppPlan(package="com.synth.bad", visited_activities=2,
                hidden_fragments=1)


def test_launcher_required():
    with pytest.raises(ValueError):
        AppPlan(package="com.synth.bad", visited_activities=0)


def test_api_plan_placement_requires_fragments():
    plan = AppPlan(package="com.synth.apis", visited_activities=2,
                   api_plan=[("phone/getDeviceId", "F")])
    with pytest.raises(ValueError):
        build_app(plan)


def test_api_plan_placed_in_components():
    plan = AppPlan(package="com.synth.apis2", visited_activities=2,
                   visited_fragments=1,
                   api_plan=[("phone/getDeviceId", "B"),
                             ("storage/sdcard", "A")])
    spec = build_app(plan)
    activity_apis = [api for a in spec.activities for api in a.api_calls]
    fragment_apis = [api for f in spec.fragments for api in f.api_calls]
    assert "phone/getDeviceId" in activity_apis
    assert "phone/getDeviceId" in fragment_apis
    assert "storage/sdcard" in activity_apis
    assert "storage/sdcard" not in fragment_apis


def test_login_gate_uses_secret():
    plan = AppPlan(package="com.synth.login", visited_activities=1,
                   login_locked=1)
    spec = build_app(plan)
    main = spec.activity("MainActivity")
    from repro.apk.appspec import SubmitForm

    forms = [w.on_click for w in main.widgets
             if isinstance(w.on_click, SubmitForm)]
    assert forms and list(forms[0].required.values()) == [LOGIN_SECRET]


def test_navdrawer_flags():
    plan = AppPlan(package="com.synth.nav", visited_activities=2,
                   navdrawer_locked=1, navdrawer_forced=1)
    spec = build_app(plan)
    main = spec.activity("MainActivity")
    assert main.drawer is not None and main.drawer.navigation_view
    locked = spec.activity("Nav00Activity")
    forced = spec.activity("Section01Activity")
    assert locked.requires_intent_extras
    assert not forced.requires_intent_extras
