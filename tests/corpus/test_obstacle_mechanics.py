"""Per-app obstacle mechanics at the device level.

Each Table I app's coverage gap must come from the *mechanism* the
paper describes for it, not from generic failure — these tests poke the
obstacles directly.
"""

import pytest

from repro.adb import Adb, instrument_manifest
from repro.android import Device, reflective_fragment_switch
from repro.apk import build_apk
from repro.corpus import build_table1_app
from repro.errors import ReflectionError


def launch(package):
    device = Device()
    adb = Adb(device)
    adb.install(instrument_manifest(build_apk(build_table1_app(package))))
    adb.am_start_launcher(package)
    return device, adb


def test_cnn_navigation_view_rows_not_clickable():
    device, _ = launch("com.cnn.mobile.android.phone")
    device.swipe_from_left()
    drawer_widgets = [w for w in device.ui_dump() if w.layer == "drawer"]
    assert drawer_widgets, "drawer must render rows"
    assert all(not w.clickable for w in drawer_widgets)
    assert all(w.widget_id.startswith("anon:") for w in drawer_widgets)


def test_cnn_forced_start_splits_on_extras():
    device, adb = launch("com.cnn.mobile.android.phone")
    package = "com.cnn.mobile.android.phone"
    # The recoverable NavigationView target:
    assert adb.am_force_start(f"{package}/.Section07Activity")
    # The extras-requiring one bounces:
    assert not adb.am_force_start(f"{package}/.Nav00Activity")


def test_weather_strict_inputs_block_search():
    device, _ = launch("com.weather.Weather")
    device.enter_text("city_input_00", "abc")
    device.click_widget("btn_search_00")
    # Error dialog, no navigation.
    assert device.current_activity_name() == \
        "com.weather.Weather.MainActivity"
    device.press_back()
    device.enter_text("city_input_00", "Boston")
    device.click_widget("btn_search_00")
    # In-app navigation carries extras, so the gate opens with the
    # right input.
    assert device.current_activity_name() == \
        "com.weather.Weather.Search00Activity"


def test_dubsmash_fragments_resist_reflection():
    device, _ = launch("com.mobilemotion.dubsmash")
    for index in range(3):
        with pytest.raises(ReflectionError):
            reflective_fragment_switch(
                device, f"com.mobilemotion.dubsmash.Raw{index:02d}Fragment"
            )


def test_dubsmash_attached_fragments_carry_no_resource_ids():
    device, _ = launch("com.mobilemotion.dubsmash")
    device.click_widget("btn_raw_00")
    fragment_widgets = [w for w in device.ui_dump() if w.owner_is_fragment]
    assert fragment_widgets
    assert all(w.resource_value is None for w in fragment_widgets)


def test_zara_args_fragments_resist_reflection():
    device, _ = launch("com.inditex.zara")
    failures = 0
    for index in range(6):
        try:
            reflective_fragment_switch(
                device, f"com.inditex.zara.Detail{index:02d}Fragment"
            )
        except ReflectionError as exc:
            assert "parameters" in str(exc)
            failures += 1
    assert failures == 6


def test_adobe_popup_items_hide_the_targets():
    device, _ = launch("com.adobe.reader")
    # Open one of the overflow menus: the target is only inside it.
    overflow = next(w.widget_id for w in device.ui_dump()
                    if w.widget_id.startswith("btn_overflow"))
    device.click_widget(overflow)
    layers = {w.layer for w in device.ui_dump()}
    assert layers == {"popup"}
    # Dismissing via blank space (the explorer's behaviour) loses it.
    device.tap(1060, 1900)
    assert all(w.layer == "content" or w.layer == "drawer"
               for w in device.ui_dump())