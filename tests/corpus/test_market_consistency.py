"""Market honesty: metadata flags must match the generated artifacts."""

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.corpus import generate_market
from repro.errors import PackedApkError
from repro.smali.apktool import Apktool
from repro.static.effective import fragment_subclasses


@pytest.fixture(scope="module")
def market():
    return generate_market(count=40, seed=11)


def test_fragment_flag_matches_generated_code(market):
    tool = Apktool()
    for app in market:
        if app.packed:
            continue
        decoded = tool.decode(app.build())
        has_fragments = bool(fragment_subclasses(decoded))
        assert has_fragments == app.uses_fragments, app.package


def test_packed_flag_matches_decode_behaviour(market):
    tool = Apktool()
    for app in market:
        if app.packed:
            with pytest.raises(PackedApkError):
                tool.decode(app.build())
        else:
            tool.decode(app.build())


def test_market_apps_explorable(market):
    explorable = [a for a in market if not a.packed][:3]
    for app in explorable:
        result = FragDroid(
            Device(), FragDroidConfig(max_events=2000)
        ).explore(app.build())
        assert result.visited_activities, app.package
        if app.uses_fragments:
            assert result.fragment_total > 0


def test_download_counts_plausible(market):
    for app in market:
        assert app.downloads.endswith("+")
        # The paper's population: "more than 500,000 downloads".
        assert int(app.downloads[:-1].replace(",", "")) >= 500_000