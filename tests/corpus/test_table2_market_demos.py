"""Table II ground truth, the 217-app market, and the figure demos."""

from repro.apk import build_apk
from repro.corpus import API_PLAN, generate_market
from repro.corpus.demos import (
    demo_aftm_example,
    demo_drawer_app,
    demo_tabbed_app,
)
from repro.corpus.market import CATEGORIES
from repro.corpus.table1_apps import table1_packages
from repro.static import extract_static_info
from repro.static.sensitive import SENSITIVE_API_CATALOG, is_sensitive_api


# -- Table II ground truth -----------------------------------------------------

def test_api_plan_covers_table1_apps():
    assert set(API_PLAN) == set(table1_packages())


def test_all_planned_apis_are_catalogued():
    for entries in API_PLAN.values():
        for api, placement in entries:
            assert is_sensitive_api(api), api
            assert placement in ("A", "F", "B")


def test_every_catalog_api_planned_somewhere():
    planned = {api for entries in API_PLAN.values() for api, _ in entries}
    catalog = {api.name for api in SENSITIVE_API_CATALOG}
    assert planned == catalog


def test_plan_shares_match_paper_targets():
    symbols = [p for entries in API_PLAN.values() for _, p in entries]
    total = len(symbols)
    frag_assoc = sum(1 for s in symbols if s in ("F", "B")) / total
    frag_only = symbols.count("F") / total
    assert abs(frag_assoc - 0.49) < 0.03     # paper: 49%
    assert abs(frag_only - 0.096) < 0.02     # paper: >= 9.6%


def test_empty_columns_match_paper():
    assert API_PLAN["com.mobilemotion.dubsmash"] == []
    assert API_PLAN["com.where2get.android.app"] == []


# -- market ---------------------------------------------------------------------

def test_market_size_and_categories():
    market = generate_market()
    assert len(market) == 217
    assert {a.category for a in market} <= set(CATEGORIES)
    assert len({a.category for a in market}) == 27


def test_market_fragment_share_near_91_percent():
    market = generate_market()
    share = sum(a.uses_fragments for a in market) / len(market)
    assert abs(share - 0.91) < 0.01


def test_market_deterministic():
    first = generate_market(seed=5)
    second = generate_market(seed=5)
    assert [a.package for a in first] == [a.package for a in second]
    assert [a.packed for a in first] == [a.packed for a in second]


def test_market_specs_buildable():
    market = generate_market(count=10)
    for app in market:
        apk = app.build()
        assert apk.package == app.package


# -- figure demos ------------------------------------------------------------------

def test_demo_specs_compile():
    for factory in (demo_tabbed_app, demo_drawer_app, demo_aftm_example):
        apk = build_apk(factory())
        info = extract_static_info(apk)
        assert info.aftm.entry is not None


def test_aftm_example_has_all_three_edge_kinds():
    from repro.static.aftm import EdgeKind

    info = extract_static_info(build_apk(demo_aftm_example()))
    assert info.aftm.edges_of_kind(EdgeKind.E1)
    assert info.aftm.edges_of_kind(EdgeKind.E2)
    assert info.aftm.edges_of_kind(EdgeKind.E3)


def test_drawer_demo_bridge_is_hidden():
    info = extract_static_info(build_apk(demo_drawer_app()))
    # Both fragments effective; the drawer is the only bridge.
    assert len(info.fragments) == 2
