"""The 15 Table-I apps: sums match the paper, obstacles are in place."""

import pytest

from repro.apk import build_apk
from repro.corpus import TABLE1_PLANS, build_table1_app, table1_packages
from repro.corpus.table1_apps import TABLE1_EXPECTED, plan_for
from repro.static import extract_static_info


def test_fifteen_apps():
    assert len(TABLE1_PLANS) == 15
    assert len(table1_packages()) == 15
    assert set(table1_packages()) == set(TABLE1_EXPECTED)


@pytest.mark.parametrize("package", sorted(TABLE1_EXPECTED))
def test_static_sums_match_paper(package):
    expected = TABLE1_EXPECTED[package]
    info = extract_static_info(build_apk(build_table1_app(package)))
    assert len(info.activities) == expected[1], "activity Sum"
    assert len(info.fragments) == expected[3], "fragment Sum"


def test_plan_expected_visited_match_paper():
    for plan in TABLE1_PLANS:
        expected = TABLE1_EXPECTED[plan.package]
        assert plan.expected_visited_activities == expected[0], plan.package
        assert plan.expected_visited_fragments == expected[2], plan.package


def test_dubsmash_has_only_unmanaged_fragments():
    plan = plan_for("com.mobilemotion.dubsmash")
    assert plan.visited_fragments == 0
    assert plan.unmanaged_fragments == 3
    assert plan.api_plan == []


def test_zara_has_args_fragments():
    plan = plan_for("com.inditex.zara")
    assert plan.args_fragments == 6


def test_cnn_uses_navigation_view():
    plan = plan_for("com.cnn.mobile.android.phone")
    assert plan.navdrawer_locked == 7
    assert plan.navdrawer_forced == 2


def test_unknown_package_rejected():
    with pytest.raises(KeyError):
        plan_for("com.nope")
