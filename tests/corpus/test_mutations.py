"""The app-evolution mutation operators (repro.corpus.mutations)."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.corpus import demo_tabbed_app
from repro.corpus.mutations import (
    add_activity,
    rename_fragment,
    shuffle_widget_ids,
)
from repro.errors import ApkError
from tests.conftest import make_full_demo_spec


def all_widget_ids(spec):
    ids = []
    for activity in spec.activities:
        ids.extend(w.id for w in activity.widgets)
        if activity.drawer:
            ids.extend(w.id for w in activity.drawer.items)
    for fragment in spec.fragments:
        ids.extend(w.id for w in fragment.widgets)
    return sorted(ids)


def test_rename_fragment_rewrites_every_reference():
    spec = make_full_demo_spec()
    target = spec.fragments[0].name
    mutated = rename_fragment(spec, target, f"{target}V2")
    names = {f.name for f in mutated.fragments}
    assert f"{target}V2" in names
    assert target not in names
    for activity in mutated.activities:
        assert target not in activity.hosted_fragments
        assert activity.initial_fragment != target
    # The original spec is untouched.
    assert target in {f.name for f in spec.fragments}


def test_rename_fragment_keeps_the_app_explorable():
    spec = demo_tabbed_app()
    target = spec.fragments[0].name
    mutated = rename_fragment(spec, target, f"{target}V2")
    result = FragDroid(Device()).explore(build_apk(mutated))
    baseline = FragDroid(Device()).explore(build_apk(spec))
    assert len(result.visited_fragments) == len(baseline.visited_fragments)


def test_rename_unknown_fragment_raises():
    with pytest.raises(ApkError):
        rename_fragment(make_full_demo_spec(), "NoSuchFragment", "X")


def test_add_activity_extends_the_manifest():
    spec = make_full_demo_spec()
    before = len(spec.activities)
    mutated = add_activity(spec, "UpdateNewsActivity")
    assert len(mutated.activities) == before + 1
    assert any(a.name == "UpdateNewsActivity" for a in mutated.activities)
    assert len(spec.activities) == before


def test_add_duplicate_activity_raises():
    spec = make_full_demo_spec()
    existing = spec.activities[0].name
    with pytest.raises(ApkError):
        add_activity(spec, existing)


def test_shuffle_widget_ids_permutes_without_losing_ids():
    spec = demo_tabbed_app()
    mutated = shuffle_widget_ids(spec, seed=5)
    assert all_widget_ids(mutated) == all_widget_ids(spec)
    # At least one multi-widget container actually changed order.
    changed = any(
        [w.id for w in a.widgets] != [w.id for w in b.widgets]
        for a, b in zip(spec.activities, mutated.activities)
        if len(a.widgets) >= 2
    ) or any(
        [w.id for w in a.widgets] != [w.id for w in b.widgets]
        for a, b in zip(spec.fragments, mutated.fragments)
        if len(a.widgets) >= 2
    )
    assert changed


def test_shuffle_widget_ids_is_deterministic():
    first = shuffle_widget_ids(demo_tabbed_app(), seed=9)
    second = shuffle_widget_ids(demo_tabbed_app(), seed=9)
    assert all_widget_ids(first) == all_widget_ids(second)
    for a, b in zip(first.activities, second.activities):
        assert [w.id for w in a.widgets] == [w.id for w in b.widgets]


def test_shuffle_keeps_the_app_consistent():
    """Handlers follow their widgets, so the shuffled app still builds
    and explores to the same component counts."""
    spec = demo_tabbed_app()
    mutated = shuffle_widget_ids(spec, seed=3)
    result = FragDroid(Device()).explore(build_apk(mutated))
    baseline = FragDroid(Device()).explore(build_apk(spec))
    assert len(result.visited_activities) == len(
        baseline.visited_activities)
    assert len(result.visited_fragments) == len(
        baseline.visited_fragments)
