"""Each FragDroid mechanism contributes coverage (DESIGN.md ablations)."""

import pytest

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.corpus import build_table1_app
from repro.corpus.synth import LOGIN_SECRET


def explore(package, config=None):
    return FragDroid(Device(), config).explore(
        build_apk(build_table1_app(package))
    )


def test_reflection_ablation():
    package = "com.advancedprocessmanager"  # many reflection-only fragments
    full = explore(package)
    without = explore(package, FragDroidConfig(enable_reflection=False))
    assert len(without.visited_fragments) < len(full.visited_fragments)


def test_forced_start_ablation():
    package = "com.cnn.mobile.android.phone"  # NavigationView targets
    full = explore(package)
    without = explore(package, FragDroidConfig(enable_forced_start=False))
    assert len(without.visited_activities) < len(full.visited_activities)


def test_input_file_ablation():
    package = "com.weather.Weather"  # strict-input gates
    baseline = explore(package)
    # Supply the analyst secrets for every login field.
    values = {f"password_{i:02d}": LOGIN_SECRET for i in range(10)}
    informed = explore(package, FragDroidConfig(input_values=values))
    assert len(informed.visited_activities) > len(
        baseline.visited_activities
    )


def test_click_exploration_ablation():
    package = "net.aviascanner.aviascanner"
    full = explore(package)
    without = explore(
        package, FragDroidConfig(enable_click_exploration=False)
    )
    # Without Case 3 clicking, only the entry and forced starts remain.
    assert len(without.visited_activities) <= len(full.visited_activities)
    assert without.stats.events < full.stats.events
