"""Multi-pane UIs: several Fragments on screen at once (paper §II-B)."""

import pytest

from repro import Device, FragDroid
from repro.apk import (
    ActivitySpec,
    AppSpec,
    FragmentSpec,
    ShowFragment,
    WidgetSpec,
    build_apk,
)
from repro.static import extract_static_info
from repro.types import WidgetKind


@pytest.fixture(scope="module")
def tablet_app():
    """A master/detail tablet layout: list pane + detail pane."""
    return AppSpec(
        package="com.tablet.mail",
        activities=[
            ActivitySpec(
                name="MailActivity", launcher=True,
                initial_fragment="FolderListFragment",
                panes=[("detail_pane", "MessageFragment")],
            ),
        ],
        fragments=[
            FragmentSpec(name="FolderListFragment", widgets=[
                WidgetSpec(id="folder_row", kind=WidgetKind.LIST_ITEM,
                           text="Inbox",
                           on_click=ShowFragment("MessageFragment",
                                                 "detail_pane")),
            ]),
            FragmentSpec(name="MessageFragment",
                         api_calls=["identification/getString"],
                         widgets=[
                             WidgetSpec(id="message_body",
                                        kind=WidgetKind.TEXT_VIEW,
                                        text="hello"),
                         ]),
        ],
    )


def test_both_panes_attached_at_launch(tablet_app, device, adb):
    adb.install(build_apk(tablet_app))
    adb.am_start_launcher("com.tablet.mail")
    assert device.current_fragment_classes() == [
        "com.tablet.mail.FolderListFragment",
        "com.tablet.mail.MessageFragment",
    ]
    ids = {w.widget_id for w in device.ui_dump()}
    assert {"folder_row", "message_body"} <= ids


def test_layout_declares_both_containers(tablet_app):
    apk = build_apk(tablet_app)
    layout = apk.layout_files["res/layout/activity_mail_activity.xml"]
    assert '@+id/fragment_container' in layout
    assert '@+id/detail_pane' in layout


def test_static_phase_sees_both_edges(tablet_app):
    info = extract_static_info(build_apk(tablet_app))
    assert len(info.fragments) == 2
    hosts = info.fragment_hosts
    assert hosts["com.tablet.mail.MessageFragment"] == [
        "com.tablet.mail.MailActivity"
    ]


def test_driver_identifies_both_fragments_in_one_state(tablet_app):
    result = FragDroid(Device()).explore(build_apk(tablet_app))
    assert result.visited_fragments == {
        "com.tablet.mail.FolderListFragment",
        "com.tablet.mail.MessageFragment",
    }
    # Some snapshot identified both panes simultaneously: look for a
    # visit of each within the same first interface.
    assert result.fragment_rate == 1.0


def test_pane_fragment_api_attributed(tablet_app):
    result = FragDroid(Device()).explore(build_apk(tablet_app))
    assert any(
        i.api == "identification/getString"
        and i.component.simple_name == "MessageFragment"
        for i in result.api_invocations
    )


def test_panes_serialize(tablet_app):
    from repro.apk.serialize import spec_from_dict, spec_to_dict

    restored = spec_from_dict(spec_to_dict(tablet_app))
    assert restored.activity("MailActivity").panes == [
        ("detail_pane", "MessageFragment")
    ]