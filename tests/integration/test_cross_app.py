"""Cross-app implicit intents: the exploration must not wander off.

A share button whose action is handled by *another* installed app
switches the foreground away from the app under test; the explorer
backs out and continues (like a tester pressing back), and foreign
components never pollute the AFTM or the coverage report.
"""

import pytest

from repro import Device, FragDroid
from repro.apk import (
    ActivitySpec,
    AppSpec,
    StartActivity,
    StartActivityByAction,
    WidgetSpec,
    build_apk,
)

SHARE_ACTION = "android.intent.action.SEND"


def target_app():
    return AppSpec(
        package="com.under.test",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="btn_share",
                           on_click=StartActivityByAction(SHARE_ACTION)),
                WidgetSpec(id="btn_next",
                           on_click=StartActivity("SecondActivity")),
            ]),
            ActivitySpec(name="SecondActivity"),
        ],
    )


def other_app():
    return AppSpec(
        package="com.other.sharesheet",
        activities=[
            ActivitySpec(name="ShareActivity", launcher=True, exported=True,
                         intent_actions=[SHARE_ACTION],
                         api_calls=["view/loadUrl"]),
        ],
    )


def test_runtime_resolves_cross_app_intent(device, adb):
    adb.install(build_apk(target_app()))
    adb.install(build_apk(other_app()))
    adb.am_start_launcher("com.under.test")
    device.click_widget("btn_share")
    assert device.current_activity_name() == \
        "com.other.sharesheet.ShareActivity"
    assert device.foreground.package == "com.other.sharesheet"


def test_unexported_cross_app_target_denied(device, adb):
    app_b = other_app()
    app_b.activities[0].exported = False
    # Without the launcher filter the activity isn't exported at all...
    # keep launcher but mark unexported: exported=launcher wins in the
    # builder, so craft a non-launcher handler instead.
    app_b = AppSpec(
        package="com.other.closed",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True),
            ActivitySpec(name="HiddenShareActivity", exported=False,
                         intent_actions=[SHARE_ACTION]),
        ],
    )
    adb.install(build_apk(target_app()))
    adb.install(build_apk(app_b))
    adb.am_start_launcher("com.under.test")
    device.click_widget("btn_share")
    # Denied: we stay in the app under test.
    assert device.foreground.package == "com.under.test"
    warnings = device.logcat.entries(level="W")
    assert warnings


def test_explorer_backs_out_of_foreign_app():
    device = Device()
    device.install(build_apk(other_app()))
    result = FragDroid(device).explore(build_apk(target_app()))
    # Coverage counts only the app under test.
    assert all(a.startswith("com.under.test")
               for a in result.visited_activities)
    assert "com.under.test.SecondActivity" in result.visited_activities
    assert any(e.kind == "left-app" for e in result.trace)
    # The foreign activity never enters the AFTM.
    assert all("sharesheet" not in n.name for n in result.aftm.nodes)
    # And the foreign app's API calls are not attributed to this run.
    assert all(i.component.package == "com.under.test"
               for i in result.api_invocations)