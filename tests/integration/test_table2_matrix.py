"""Golden check: the measured Table II matrix matches the ground truth
for every component the exploration reached.

For each app and each planned (api, placement): if the components
carrying the API were visited, the measured relation symbol must be
exactly the planted one (A→●, F→◗, B→⊙); fragment placements whose
fragments were never shown must be absent or weaker — never stronger.
"""

import pytest

from repro.bench.parallel import explore_many, unwrap_results
from repro.core.sensitive_analysis import build_api_report
from repro.corpus import API_PLAN, TABLE1_PLANS


@pytest.fixture(scope="module")
def report_and_results():
    results = unwrap_results(explore_many(TABLE1_PLANS, max_workers=4))
    return build_api_report(results.values()), results


EXPECTED_SYMBOL = {"A": "●", "F": "◗", "B": "⊙"}


def test_measured_matrix_never_exceeds_ground_truth(report_and_results):
    report, _ = report_and_results
    for relation in report.relations:
        planned = dict(API_PLAN[relation.package])
        assert relation.api in planned, (
            f"{relation.package} reported unplanned API {relation.api}"
        )
        placement = planned[relation.api]
        # A measured relation can only claim sources the plan planted.
        if placement == "A":
            assert relation.symbol == "●"
        elif placement == "F":
            assert relation.symbol == "◗"
        else:
            assert relation.symbol in ("●", "◗", "⊙")


def test_fully_covered_apps_reproduce_their_columns(report_and_results):
    report, results = report_and_results
    # Apps whose fragments were all visited must reproduce every planned
    # cell with the exact symbol.
    for package in ("imoblife.toolbox.full", "net.aviascanner.aviascanner",
                    "com.advancedprocessmanager", "com.adobe.reader"):
        result = results[package]
        assert result.fragment_rate in (None, 1.0) or \
            len(result.visited_fragments) >= result.fragment_total - 1
        for api, placement in API_PLAN[package]:
            relation = report.relation(package, api)
            assert relation is not None, (package, api)
            if placement in EXPECTED_SYMBOL and placement != "B":
                assert relation.symbol == EXPECTED_SYMBOL[placement], (
                    package, api, placement, relation.symbol
                )


def test_empty_columns_stay_empty(report_and_results):
    report, _ = report_and_results
    assert report.relation("com.mobilemotion.dubsmash",
                           "phone/getDeviceId") is None
    assert "com.where2get.android.app" not in report.packages