"""The evolutionary property: dynamic discovery repairs static blindness.

Targets resolved at runtime (Class.forName on obfuscated strings) are
invisible to Algorithm 1 but must still end up in the AFTM — with a
concrete click trigger — once the dynamic phase presses the button.
"""

import pytest

from repro import Device, FragDroid
from repro.apk import (
    ActivitySpec,
    AppSpec,
    StartActivity,
    WidgetSpec,
    build_apk,
)
from repro.static import extract_static_info
from repro.static.aftm import EdgeKind, activity_node


@pytest.fixture(scope="module")
def app():
    return AppSpec(
        package="com.dyn.disc",
        activities=[
            ActivitySpec(name="MainActivity", launcher=True, widgets=[
                WidgetSpec(id="btn_plain",
                           on_click=StartActivity("PlainActivity")),
                WidgetSpec(id="btn_dyn",
                           on_click=StartActivity("DynActivity",
                                                  dynamic=True)),
            ]),
            ActivitySpec(name="PlainActivity"),
            ActivitySpec(name="DynActivity", widgets=[
                # An outgoing static edge keeps it non-isolated (in Sum).
                WidgetSpec(id="btn_home",
                           on_click=StartActivity("MainActivity")),
            ]),
        ],
    )


def test_static_phase_misses_dynamic_edge(app):
    info = extract_static_info(build_apk(app))
    e1 = {(e.src.simple_name, e.dst.simple_name)
          for e in info.aftm.edges_of_kind(EdgeKind.E1)}
    assert ("MainActivity", "PlainActivity") in e1
    assert ("MainActivity", "DynActivity") not in e1


def test_dynamic_phase_discovers_and_records_the_edge(app):
    result = FragDroid(Device()).explore(build_apk(app))
    # Visited despite static blindness:
    assert "com.dyn.disc.DynActivity" in result.visited_activities
    # And the AFTM evolved: the edge now exists with the click trigger.
    edges = {
        (e.src.simple_name, e.dst.simple_name): e.trigger
        for e in result.aftm.edges_of_kind(EdgeKind.E1)
    }
    assert edges.get(("MainActivity", "DynActivity")) == "btn_dyn"
    assert result.stats.aftm_updates >= 1


def test_fragment_aware_state_count_exceeds_activity_count():
    from repro.corpus import build_table1_app

    result = FragDroid(Device()).explore(
        build_apk(build_table1_app("com.advancedprocessmanager"))
    )
    # Challenge 1 quantified: more distinct fragment-level interfaces
    # than Activities, because fragment transformations create states.
    assert result.stats.distinct_interfaces > len(result.visited_activities)