"""The paper's motivating figures, exercised end-to-end.

Figure 1 (tab-driven Fragment transformation), Figure 2 (hidden slide
menu as the only bridge), Figure 5 (the AFTM example graph).
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import ActivityExplorer
from repro.corpus.demos import (
    demo_aftm_example,
    demo_drawer_app,
    demo_tabbed_app,
)
from repro.static.aftm import EdgeKind


def test_figure1_fragdroid_sees_both_tabs():
    result = FragDroid(Device()).explore(build_apk(demo_tabbed_app()))
    fragments = {f.rsplit(".", 1)[-1] for f in result.visited_fragments}
    assert fragments == {"CategoriesFragment", "RecentFragment"}
    # The fragment transformation kept the Activity constant, but the
    # UI state changed — the RecentFragment's API call proves the state
    # was actually reached, not just modelled.
    assert any(i.api == "internet/Connectivity.getActiveNetworkInfo"
               for i in result.api_invocations)


def test_figure1_activity_tool_sees_one_state():
    result = ActivityExplorer(Device()).run(build_apk(demo_tabbed_app()))
    # Both tools visit both activities; the Activity-level tool simply
    # has no notion of the two tab fragments.
    assert len(result.visited_activities) == 2


def test_figure2_drawer_is_the_only_bridge():
    result = FragDroid(Device()).explore(build_apk(demo_drawer_app()))
    fragments = {f.rsplit(".", 1)[-1] for f in result.visited_fragments}
    assert "FavoritesFragment" in fragments
    # The transition was discovered dynamically through the drawer (or
    # forced by reflection), so the AFTM gained an edge the static phase
    # could already see but could not trigger directly.
    e3 = result.aftm.edges_of_kind(EdgeKind.E3)
    e2 = result.aftm.edges_of_kind(EdgeKind.E2)
    assert e2 or e3


def test_figure5_aftm_shape():
    result = FragDroid(Device()).explore(build_apk(demo_aftm_example()))
    aftm = result.aftm
    assert {n.simple_name for n in aftm.activities} == {"A0Activity",
                                                        "A1Activity"}
    assert {n.simple_name for n in aftm.fragments} == {"F0Fragment",
                                                       "F1Fragment",
                                                       "F2Fragment"}
    assert aftm.is_complete()
    dot = aftm.to_dot()
    assert "E1" in dot and "E2" in dot and "E3" in dot
