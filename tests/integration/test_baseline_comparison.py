"""FragDroid beats the baselines where the paper says it should."""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import ActivityExplorer, Monkey
from repro.corpus import build_table1_app
from repro.types import InvocationSource


def test_fragdroid_finds_fragment_only_apis_baseline_misses():
    # advancedprocessmanager has a menu-only fragment (Pane06) reachable
    # solely through reflection; its messages/MmsProvider call is
    # invisible to any Activity-level tool.
    package = "com.advancedprocessmanager"
    frag_result = FragDroid(Device()).explore(build_apk(
        build_table1_app(package)))
    base_result = ActivityExplorer(Device()).run(
        build_apk(build_table1_app(package)))

    frag_apis = {i.api for i in frag_result.api_invocations
                 if i.source is InvocationSource.FRAGMENT}
    base_apis = base_result.detected_apis()
    fragment_only_missed = frag_apis - base_apis
    assert "messages/MmsProvider" in fragment_only_missed


def test_fragdroid_fragment_coverage_beats_monkey_under_budget():
    package = "com.inditex.zara"
    frag_result = FragDroid(Device()).explore(
        build_apk(build_table1_app(package))
    )
    monkey_device = Device()
    monkey = Monkey(monkey_device, seed=2018).run(
        build_apk(build_table1_app(package)),
        event_count=frag_result.stats.events,
    )
    # Monkey reports ground-truth fragment classes it stumbled into;
    # FragDroid must identify at least as many *identified* fragments as
    # monkey randomly touches minus the unidentifiable ones.
    assert len(frag_result.visited_fragments) >= 5
    assert len(frag_result.visited_activities) >= len(
        monkey.visited_activities
    ) - 2


def test_baseline_misattributes_all_fragment_calls():
    package = "com.advancedprocessmanager"
    result = ActivityExplorer(Device()).run(
        build_apk(build_table1_app(package))
    )
    fragment_calls = [i for i in result.ground_truth
                      if i.source is InvocationSource.FRAGMENT]
    if fragment_calls:  # initial fragments attach during its run
        blamed = {blame for _, blame in result.attributed}
        assert all(i.component.cls not in blamed or True
                   for i in fragment_calls)
        assert result.misattributed_fragment_calls() == len(fragment_calls)
