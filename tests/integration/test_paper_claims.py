"""The paper's headline numbers, reproduced end-to-end on the corpus.

These are the slow-but-authoritative checks: every Sum cell of Table I,
the coverage means, the Table II aggregates, and the usage study.
Tolerances reflect that our substrate is a simulator, not the authors'
phones — the *shape* must hold (see EXPERIMENTS.md).
"""

import pytest

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.core import CoverageReport, CoverageRow, build_api_report
from repro.corpus import TABLE1_PLANS, build_app, generate_market
from repro.corpus.table1_apps import (
    PAPER_MEAN_ACTIVITY_RATE,
    PAPER_MEAN_FRAGMENT_RATE,
    TABLE1_EXPECTED,
)
from repro.errors import PackedApkError
from repro.smali.apktool import Apktool
from repro.static.effective import fragment_subclasses


@pytest.fixture(scope="module")
def table1_results():
    results = {}
    for plan in TABLE1_PLANS:
        device = Device()
        results[plan.package] = FragDroid(device).explore(
            build_apk(build_app(plan))
        )
    return results


def test_visited_counts_match_paper_exactly(table1_results):
    for package, result in table1_results.items():
        expected = TABLE1_EXPECTED[package]
        assert len(result.visited_activities) == expected[0], package
        assert len(result.visited_fragments) == expected[2], package


def test_mean_rates_match_paper(table1_results):
    report = CoverageReport(
        [CoverageRow.from_result(r) for r in table1_results.values()]
    )
    assert abs(report.mean_activity_rate - PAPER_MEAN_ACTIVITY_RATE) < 0.02
    assert abs(report.mean_fragment_rate - PAPER_MEAN_FRAGMENT_RATE) < 0.02


def test_fiva_claims(table1_results):
    report = CoverageReport(
        [CoverageRow.from_result(r) for r in table1_results.values()]
    )
    # "the average coverage rate ... is more than 50%"
    assert report.mean_fiva_rate > 0.50
    # "for a third of tested apps, this coverage rate has reached 100%"
    assert report.full_fiva_apps() >= 5


def test_table2_aggregates(table1_results):
    report = build_api_report(table1_results.values())
    assert report.distinct_apis_found == 46
    assert abs(report.fragment_associated_share - 0.49) < 0.05
    assert abs(report.fragment_only_share - 0.096) < 0.02


def test_dubsmash_and_zara_failure_modes(table1_results):
    dubsmash = table1_results["com.mobilemotion.dubsmash"]
    assert len(dubsmash.visited_fragments) == 0
    assert dubsmash.fragment_total == 3
    zara = table1_results["com.inditex.zara"]
    assert zara.stats.reflection_failures >= 6  # args-locked fragments


def test_usage_study_91_percent():
    market = generate_market()
    tool = Apktool()
    analyzable, with_fragments = 0, 0
    for app in market:
        try:
            decoded = tool.decode(app.build())
        except PackedApkError:
            continue
        analyzable += 1
        if fragment_subclasses(decoded):
            with_fragments += 1
    share = with_fragments / analyzable
    assert abs(share - 0.91) < 0.03
