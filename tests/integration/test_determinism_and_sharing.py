"""Determinism of the pipeline and shared-fragment semantics."""

import pytest

from repro import Device, FragDroid
from repro.apk import (
    ActivitySpec,
    AppSpec,
    FragmentSpec,
    ShowFragment,
    StartActivity,
    WidgetSpec,
    build_apk,
)
from repro.corpus import build_table1_app
from repro.static import extract_static_info
from repro.static.aftm import EdgeKind


# -- determinism ---------------------------------------------------------------

def test_exploration_fully_deterministic():
    package = "com.aircrunch.shopalerts"
    first = FragDroid(Device()).explore(build_apk(build_table1_app(package)))
    second = FragDroid(Device()).explore(build_apk(build_table1_app(package)))
    assert first.visited_activities == second.visited_activities
    assert first.visited_fragments == second.visited_fragments
    assert {(e.src, e.dst, e.kind, e.trigger) for e in first.aftm.edges} == {
        (e.src, e.dst, e.kind, e.trigger) for e in second.aftm.edges
    }
    assert first.stats.test_cases == second.stats.test_cases
    assert first.stats.events == second.stats.events
    assert [str(e) for e in first.trace] == [str(e) for e in second.trace]


def test_compiled_artifacts_deterministic():
    first = build_apk(build_table1_app("com.c51"))
    second = build_apk(build_table1_app("com.c51"))
    assert first.manifest_xml == second.manifest_xml
    assert first.smali_files == second.smali_files
    assert first.public_xml == second.public_xml


# -- fragment reuse across activities (paper Section II-B) -------------------------

@pytest.fixture(scope="module")
def shared_fragment_app():
    """One Fragment hosted by two Activities — 'a Fragment may be used
    in one or more Activities'."""
    return AppSpec(
        package="com.shared",
        activities=[
            ActivitySpec(
                name="MainActivity", launcher=True,
                initial_fragment="SharedFragment",
                widgets=[WidgetSpec(id="btn_other",
                                    on_click=StartActivity("OtherActivity"))],
            ),
            ActivitySpec(
                name="OtherActivity",
                hosted_fragments=["SharedFragment"],
                container_id="fragment_container",
                widgets=[WidgetSpec(
                    id="btn_show",
                    on_click=ShowFragment("SharedFragment",
                                          "fragment_container"),
                )],
            ),
        ],
        fragments=[
            FragmentSpec(name="SharedFragment", widgets=[
                WidgetSpec(id="shared_row", text="row"),
            ]),
        ],
    )


def test_shared_fragment_has_two_hosts(shared_fragment_app):
    info = extract_static_info(build_apk(shared_fragment_app))
    hosts = info.fragment_hosts["com.shared.SharedFragment"]
    assert set(hosts) == {"com.shared.MainActivity",
                          "com.shared.OtherActivity"}
    e2 = {(e.src.simple_name, e.host)
          for e in info.aftm.edges_of_kind(EdgeKind.E2)}
    assert ("MainActivity", "com.shared.MainActivity") in e2
    assert ("OtherActivity", "com.shared.OtherActivity") in e2


def test_shared_fragment_explored_once_counted_once(shared_fragment_app):
    result = FragDroid(Device()).explore(build_apk(shared_fragment_app))
    assert result.visited_fragments == {"com.shared.SharedFragment"}
    assert result.fragment_total == 1
    visited, total = result.fragments_in_visited_activities()
    assert (visited, total) == (1, 1)