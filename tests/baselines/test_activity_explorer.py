"""The Activity-level MBT baseline: fixed-UI-state blindness."""

import pytest

from repro.android import Device
from repro.apk import build_apk
from repro.baselines import ActivityExplorer
from repro.types import InvocationSource
from tests.conftest import make_full_demo_spec


@pytest.fixture(scope="module")
def result():
    device = Device()
    return ActivityExplorer(device).run(build_apk(make_full_demo_spec()))


def test_visits_activities(result):
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert {"MainActivity", "SecondActivity", "SettingsActivity"} <= simple


def test_forced_start_recovers_exported_targets(result):
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    # AboutActivity is reachable by click; extras-gated ones are not.
    assert "VaultActivity" not in simple
    assert "HiddenActivity" not in simple


def test_fragment_calls_misattributed_to_activities(result):
    # Ground truth knows fragment calls happened...
    fragment_calls = [i for i in result.ground_truth
                      if i.source is InvocationSource.FRAGMENT]
    assert fragment_calls
    assert result.misattributed_fragment_calls() == len(fragment_calls)
    # ...but the tool blamed activities for every one of them.
    blamed = {blame for _, blame in result.attributed}
    fragment_classes = {i.component.cls for i in fragment_calls}
    assert not (blamed & fragment_classes)


def test_detects_activity_apis(result):
    assert "phone/getDeviceId" in result.detected_apis()


def test_events_bounded():
    device = Device()
    capped = ActivityExplorer(device, max_events=30).run(
        build_apk(make_full_demo_spec())
    )
    assert capped.events <= 80  # bounded overshoot per sweep step
