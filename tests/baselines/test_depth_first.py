"""The A3E-style depth-first explorer."""

from repro.android import Device
from repro.apk import build_apk
from repro.baselines import DepthFirstExplorer
from tests.conftest import make_full_demo_spec


def test_dfs_explores_activities():
    result = DepthFirstExplorer(Device()).run(
        build_apk(make_full_demo_spec())
    )
    simple = {a.rsplit(".", 1)[-1] for a in result.visited_activities}
    assert "MainActivity" in simple
    assert len(simple) >= 3
    assert result.max_depth_reached >= 1


def test_dfs_depth_limit_respected():
    result = DepthFirstExplorer(Device(), max_depth=1).run(
        build_apk(make_full_demo_spec())
    )
    assert result.max_depth_reached <= 1


def test_dfs_event_budget():
    result = DepthFirstExplorer(Device(), max_events=25).run(
        build_apk(make_full_demo_spec())
    )
    assert result.events <= 60
