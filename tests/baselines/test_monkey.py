"""Monkey: random but seeded, crash-resilient, model-free."""

from repro.android import Device
from repro.apk import build_apk
from repro.baselines import Monkey
from tests.conftest import make_full_demo_spec


def run_monkey(seed, events=400):
    device = Device()
    result = Monkey(device, seed=seed).run(
        build_apk(make_full_demo_spec()), event_count=events
    )
    return device, result


def test_monkey_visits_some_activities():
    _, result = run_monkey(seed=7)
    assert "com.example.demo.MainActivity" in result.visited_activities
    assert len(result.visited_activities) >= 2


def test_monkey_deterministic_per_seed():
    _, first = run_monkey(seed=11)
    _, second = run_monkey(seed=11)
    assert first.visited_activities == second.visited_activities
    assert first.visited_fragment_classes == second.visited_fragment_classes


def test_monkey_different_seeds_may_differ():
    _, a = run_monkey(seed=1, events=120)
    _, b = run_monkey(seed=2, events=120)
    # Not guaranteed different, but the runs must both be valid.
    assert a.events == b.events == 120


def test_monkey_survives_crashes():
    device, result = run_monkey(seed=3, events=800)
    # With 800 events the crash button is very likely hit; either way
    # the monkey must never abort before its event budget.
    assert result.events == 800
    if device.crash_count:
        assert result.crashes == device.crash_count


def test_monkey_cannot_be_targeted():
    # No API for reaching a specific interface: the result only reports
    # what it stumbled into.
    _, result = run_monkey(seed=5, events=50)
    assert not hasattr(result, "path_to")
