"""The command-line interface."""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr().out
    return code, out


def test_list(capsys):
    code, out = run_cli(capsys, "list")
    assert code == 0
    assert "demo:aftm" in out
    assert "com.inditex.zara" in out


def test_static_summary(capsys):
    code, out = run_cli(capsys, "static", "demo:aftm")
    assert code == 0
    assert "|A|=2 |F|=3" in out
    assert "[E3]" in out


def test_static_dot(capsys):
    code, out = run_cli(capsys, "static", "demo:aftm", "--dot")
    assert "digraph" in out


def test_static_json(capsys):
    code, out = run_cli(capsys, "static", "demo:aftm", "--json")
    data = json.loads(out)
    assert data["package"] == "com.example.aftm"


def test_explore_text(capsys):
    code, out = run_cli(capsys, "explore", "demo:tabs")
    assert code == 0
    assert "activities: 2/2" in out
    assert "fragments:  2/2" in out


def test_explore_json(capsys):
    code, out = run_cli(capsys, "explore", "demo:drawer", "--json")
    data = json.loads(out)
    assert data["coverage"]["fragments"]["sum"] == 2


def test_explore_flags(capsys):
    code, out = run_cli(capsys, "explore", "demo:drawer",
                        "--no-reflection", "--max-events", "500")
    assert code == 0


def test_audit(capsys):
    code, out = run_cli(capsys, "audit", "demo:tabs")
    assert code == 0
    assert "internet/Connectivity.getActiveNetworkInfo" in out


def test_unknown_app_exits(capsys):
    with pytest.raises(SystemExit):
        main(["explore", "com.not.an.app"])


def test_study(capsys):
    code, out = run_cli(capsys, "study")
    assert code == 0
    assert "217" in out and "91%" in out


def test_build_and_explore_apk_file(capsys, tmp_path):
    apk_path = str(tmp_path / "tabs.apk")
    code, out = run_cli(capsys, "build", "demo:tabs", "-o", apk_path)
    assert code == 0 and "wrote" in out
    code, out = run_cli(capsys, "explore", apk_path)
    assert code == 0
    assert "fragments:  2/2" in out


def test_explore_save_artifacts(capsys, tmp_path):
    out_dir = str(tmp_path / "run")
    code, out = run_cli(capsys, "explore", "demo:aftm", "--save", out_dir)
    assert code == 0 and "artifacts" in out
    import pathlib

    assert (pathlib.Path(out_dir) / "report.json").exists()


def test_target_command(capsys):
    code, out = run_cli(capsys, "target", "demo:tabs",
                        "internet/Connectivity.getActiveNetworkInfo")
    assert code == 0
    assert "fired" in out


def test_target_unobserved_api(capsys):
    code, out = run_cli(capsys, "target", "demo:tabs", "messages/MmsProvider")
    assert code == 1


def test_export_and_batch(capsys, tmp_path):
    import csv

    corpus_dir = tmp_path / "corpus"
    # Export two small apps only (build them directly to keep this fast).
    from repro.apk import build_apk
    from repro.apk.apkfile import save_apk
    from repro.corpus import build_table1_app, demo_tabbed_app

    save_apk(build_apk(demo_tabbed_app()), corpus_dir / "tabs.apk")
    save_apk(build_apk(build_table1_app("org.rbc.odb")),
             corpus_dir / "odb.apk")
    out_dir = tmp_path / "results"
    code, out = run_cli(capsys, "batch", str(corpus_dir),
                        "-o", str(out_dir), "--workers", "2")
    assert code == 0
    with (out_dir / "summary.csv").open() as handle:
        rows = list(csv.DictReader(handle))
    by_package = {row["package"]: row for row in rows}
    assert by_package["org.rbc.odb"]["activities_visited"] == "4"
    assert by_package["com.example.wallpapers"]["fragments_visited"] == "2"
    assert (out_dir / "org.rbc.odb" / "report.json").exists()


def test_batch_empty_directory(capsys, tmp_path):
    code, _ = run_cli(capsys, "batch", str(tmp_path), "-o",
                      str(tmp_path / "out"))
    assert code == 1


def test_explore_trace_jsonl_and_trace_summary(capsys, tmp_path):
    trace = tmp_path / "run.jsonl"
    code, out = run_cli(capsys, "explore", "demo:tabs",
                        "--trace-jsonl", str(trace))
    assert code == 0
    assert "spans" in out
    assert trace.exists() and trace.read_text().strip()

    code, out = run_cli(capsys, "trace-summary", str(trace), "--top", "3")
    assert code == 0
    assert "static.extract" in out
    assert "explorer.test_case" in out
    assert "slowest spans" in out


def test_trace_summary_missing_file(capsys, tmp_path):
    code, out = run_cli(capsys, "trace-summary", str(tmp_path / "nope.jsonl"))
    assert code == 1
    assert "no such trace file" in out


def test_trace_summary_empty_file(capsys, tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    code, out = run_cli(capsys, "trace-summary", str(empty))
    assert code == 1
    assert "holds no spans" in out


def test_trace_summary_flame(capsys, tmp_path):
    trace = tmp_path / "run.jsonl"
    run_cli(capsys, "explore", "demo:tabs", "--trace-jsonl", str(trace))
    code, out = run_cli(capsys, "trace-summary", str(trace), "--flame")
    assert code == 0
    lines = [line for line in out.splitlines() if line]
    assert any(line.startswith("explore ") for line in lines)
    assert any(";" in line for line in lines)
    # Per-trace self times telescope: the collapsed-stack values sum to
    # the root span's duration (in microseconds).
    from repro.obs import read_spans

    root_us = sum(s.duration for s in read_spans(trace)
                  if s.parent_id is None) * 1e6
    total_us = sum(float(line.rsplit(" ", 1)[1]) for line in lines)
    assert abs(total_us - root_us) <= max(1e-6 * root_us, 1e-3)


def test_explore_events_jsonl_and_metrics_prom(capsys, tmp_path):
    events = tmp_path / "events.jsonl"
    prom = tmp_path / "metrics.prom"
    code, out = run_cli(capsys, "explore", "demo:tabs",
                        "--events-jsonl", str(events),
                        "--metrics-prom", str(prom))
    assert code == 0
    assert "events to" in out
    assert "metrics to" in out

    from repro.obs import read_events

    loaded = read_events(events)
    kinds = {event.kind for event in loaded}
    assert "run.start" in kinds and "run.end" in kinds
    assert "state.discovered" in kinds
    text = prom.read_text()
    assert "# TYPE fragdroid_clicks_total counter" in text


def test_dashboard_command_single_run_and_errors(capsys, tmp_path):
    run_dir = tmp_path / "run"
    events = tmp_path / "events.jsonl"
    run_cli(capsys, "explore", "demo:tabs",
            "--events-jsonl", str(events),
            "--trace-jsonl", str(tmp_path / "spans.jsonl"),
            "--save", str(run_dir))
    out_html = tmp_path / "dash.html"
    code, out = run_cli(capsys, "dashboard", str(run_dir),
                        "-o", str(out_html))
    assert code == 0
    assert "wrote dashboard" in out
    html_text = out_html.read_text()
    assert html_text.startswith("<!DOCTYPE html>")
    assert "Coverage over time" in html_text

    code, out = run_cli(capsys, "dashboard", str(tmp_path / "nowhere"),
                        "-o", str(out_html))
    assert code == 1
    assert "report.json" in out


def test_static_cache_flag_and_cache_commands(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    code, cold = run_cli(capsys, "explore", "demo:tabs",
                         "--static-cache", str(cache_dir))
    assert code == 0
    code, warm = run_cli(capsys, "explore", "demo:tabs",
                         "--static-cache", str(cache_dir))
    assert code == 0
    assert warm == cold

    code, out = run_cli(capsys, "cache", "stats", "--dir", str(cache_dir))
    assert code == 0
    assert "entries: 1" in out
    assert "lifetime hits: 1" in out

    code, out = run_cli(capsys, "cache", "clear", "--dir", str(cache_dir))
    assert code == 0
    assert "cleared 1 entries" in out
    code, out = run_cli(capsys, "cache", "stats", "--dir", str(cache_dir))
    assert "entries: 0" in out


def test_static_command_uses_cache(capsys, tmp_path):
    cache_dir = tmp_path / "cache"
    code, cold = run_cli(capsys, "static", "demo:aftm",
                         "--static-cache", str(cache_dir))
    assert code == 0
    code, warm = run_cli(capsys, "static", "demo:aftm",
                         "--static-cache", str(cache_dir))
    assert code == 0
    assert warm == cold
    assert (cache_dir / "stats.json").exists()


def test_study_workers_and_backend_flags(capsys):
    code, serial = run_cli(capsys, "study")
    assert code == 0
    code, parallel = run_cli(capsys, "study", "--workers", "4",
                             "--backend", "process")
    assert code == 0
    assert parallel == serial


def _seed_registry(tmp_path, **overrides):
    from repro.obs import RunRecord, RunRegistry

    registry = RunRegistry(tmp_path)
    record = RunRecord(
        label=overrides.pop("label", "sweep"),
        coverage={"mean_activity_rate": 0.8, "mean_fragment_rate": 0.6,
                  "apis": 100, "apps_total": 2, "apps_ok": 2,
                  **overrides.pop("coverage", {})},
        meta={"created": overrides.pop("created", 1.0)},
        **overrides,
    )
    registry.record(record)
    return registry, record


def test_runs_list_show_and_pin(capsys, tmp_path):
    registry, record = _seed_registry(tmp_path)
    code, out = run_cli(capsys, "runs", "list", "--dir", str(tmp_path))
    assert code == 0
    assert record.run_id in out

    code, out = run_cli(capsys, "runs", "pin", record.run_id[:8],
                        "--dir", str(tmp_path))
    assert code == 0
    assert registry.pinned() == record.run_id
    code, out = run_cli(capsys, "runs", "list", "--dir", str(tmp_path))
    assert "pinned" in out

    code, out = run_cli(capsys, "runs", "show", record.run_id,
                        "--dir", str(tmp_path))
    assert code == 0
    assert json.loads(out)["run_id"] == record.run_id

    code, out = run_cli(capsys, "runs", "show", "missing",
                        "--dir", str(tmp_path))
    assert code == 1

    code, out = run_cli(capsys, "runs", "list", "--dir",
                        str(tmp_path / "empty"))
    assert code == 0
    assert "no run records" in out


def test_runs_diff_and_gc(capsys, tmp_path):
    registry, base = _seed_registry(tmp_path)
    _, cand = _seed_registry(tmp_path, label="candidate", created=2.0,
                             coverage={"mean_activity_rate": 0.5})
    code, out = run_cli(capsys, "runs", "diff", base.run_id, cand.run_id,
                        "--dir", str(tmp_path))
    assert code == 0
    assert "mean_activity_rate" in out

    code, out = run_cli(capsys, "runs", "diff", base.run_id, cand.run_id,
                        "--dir", str(tmp_path), "--json")
    assert json.loads(out)["comparable"] is True

    code, out = run_cli(capsys, "runs", "diff", base.run_id,
                        "--dir", str(tmp_path))
    assert code == 2  # diff needs exactly two refs

    run_cli(capsys, "runs", "pin", base.run_id, "--dir", str(tmp_path))
    code, out = run_cli(capsys, "runs", "gc", "--keep", "1",
                        "--dir", str(tmp_path))
    assert code == 0
    assert set(registry.ids()) == {base.run_id, cand.run_id}


def test_runs_ingest_bench_results(capsys, tmp_path):
    result = tmp_path / "bench.json"
    result.write_text(json.dumps({"schema": 1, "bench": "t1",
                                  "data": {"apps": 15, "rate": 0.7}}))
    runs_dir = tmp_path / "runs"
    code, out = run_cli(capsys, "runs", "ingest", str(result),
                        "--dir", str(runs_dir))
    assert code == 0
    assert "bench:t1" in out

    bad = tmp_path / "bad.json"
    bad.write_text("{}")
    code, out = run_cli(capsys, "runs", "ingest", str(bad),
                        "--dir", str(runs_dir))
    assert code == 1
    assert "cannot ingest" in out


def test_regress_against_record_files(capsys, tmp_path):
    from repro.obs import RunRecord

    base = RunRecord(label="sweep",
                     coverage={"mean_activity_rate": 0.8, "apis": 100})
    base.run_id = base.compute_id()
    cand = RunRecord(label="sweep",
                     coverage={"mean_activity_rate": 0.5, "apis": 100})
    cand.run_id = cand.compute_id()
    base_file = tmp_path / "base.json"
    base_file.write_text(base.to_json())
    cand_file = tmp_path / "cand.json"
    cand_file.write_text(cand.to_json())

    code, out = run_cli(capsys, "regress", "--baseline", str(base_file),
                        "--candidate", str(cand_file),
                        "--dir", str(tmp_path / "runs"))
    assert code == 1
    assert "FAIL" in out and "mean_activity_rate" in out

    code, out = run_cli(capsys, "regress", "--baseline", str(base_file),
                        "--candidate", str(base_file),
                        "--dir", str(tmp_path / "runs"), "--json")
    assert code == 0
    assert json.loads(out)["ok"] is True

    code, out = run_cli(capsys, "regress", "--baseline", "nonexistent",
                        "--dir", str(tmp_path / "runs"))
    assert code == 2
    assert "cannot load baseline" in out


def test_regress_runs_the_sweep_when_no_candidate_named(capsys, tmp_path):
    from repro.obs import RunRegistry

    runs_dir = tmp_path / "runs"
    # First sweep becomes the committed-style baseline record file.
    code, out = run_cli(capsys, "regress", "--baseline", "self",
                        "--dir", str(runs_dir),
                        "--ignore-comparability")
    assert code == 2  # baseline "self" doesn't exist yet
    registry = RunRegistry(runs_dir)

    from repro.bench import run_table1
    from repro.core.config import FragDroidConfig

    # Baseline recorded untraced: its record carries coverage but no
    # phases, so the gate below judges only the deterministic numbers.
    run_table1(config=FragDroidConfig(run_registry=registry),
               max_workers=2)
    (baseline,) = registry.list()
    out_file = tmp_path / "candidate.json"
    code, out = run_cli(capsys, "regress",
                        "--baseline", baseline.run_id,
                        "--dir", str(runs_dir), "--workers", "2",
                        "--record-out", str(out_file))
    assert code == 0
    assert "recorded candidate sweep" in out
    assert "PASS" in out
    assert json.loads(out_file.read_text())["label"] == "sweep"


@pytest.fixture
def saved_replay_run(capsys, tmp_path):
    out_dir = tmp_path / "run"
    code, _ = run_cli(capsys, "explore", "demo:tabs",
                      "--save", str(out_dir), "--export-replay")
    assert code == 0
    scripts = sorted((out_dir / "testcases").glob("*.replay.json"))
    assert scripts
    return scripts


def test_export_replay_writes_scripts(saved_replay_run):
    text = saved_replay_run[0].read_text()
    data = json.loads(text)
    assert data["schema"] >= 2
    assert data["package"] == "com.example.wallpapers"
    assert data["events"]


def test_save_without_export_replay_writes_no_scripts(capsys, tmp_path):
    out_dir = tmp_path / "run"
    code, _ = run_cli(capsys, "explore", "demo:tabs", "--save",
                      str(out_dir))
    assert code == 0
    assert not list((out_dir / "testcases").glob("*.replay.json"))


def test_export_replay_requires_save(capsys):
    with pytest.raises(SystemExit, match="--save"):
        main(["explore", "demo:tabs", "--export-replay"])


def test_replay_divergence_free(capsys, saved_replay_run):
    code, out = run_cli(capsys, "replay", str(saved_replay_run[0]))
    assert code == 0
    assert "divergence-free" in out
    assert "coverage reached" in out


def test_replay_json_output(capsys, saved_replay_run):
    code, out = run_cli(capsys, "replay", str(saved_replay_run[0]),
                        "--json")
    assert code == 0
    data = json.loads(out)
    assert data["ok"] is True
    assert data["applied"] == data["total"]


def test_replay_against_wrong_app_diverges(capsys, saved_replay_run):
    code, out = run_cli(capsys, "replay", str(saved_replay_run[0]),
                        "--apk", "demo:drawer")
    assert code == 1
    assert "diverged" in out


def test_replay_malformed_script_exits_2(capsys, tmp_path):
    bad = tmp_path / "bad.replay.json"
    bad.write_text('{"schema": 999, "package": "x", "events": []}')
    code, out = run_cli(capsys, "replay", str(bad))
    assert code == 2
    assert "schema" in out
    bad.write_text("{not json")
    code, out = run_cli(capsys, "replay", str(bad))
    assert code == 2
    assert "not valid JSON" in out


def test_replay_missing_file_exits_2(capsys, tmp_path):
    code, out = run_cli(capsys, "replay", str(tmp_path / "nope.json"))
    assert code == 2
    assert "cannot read" in out


def test_replay_record_feeds_the_regress_gate(capsys, tmp_path,
                                              saved_replay_run):
    registry = str(tmp_path / "runs")
    code, out = run_cli(capsys, "replay", str(saved_replay_run[0]),
                        "--record", registry)
    assert code == 0 and "recorded replay as" in out
    clean_id = out.strip().rsplit(" ", 1)[-1]
    # A diverged replay (wrong app) records the divergence count.
    code, out = run_cli(capsys, "replay", str(saved_replay_run[0]),
                        "--apk", "demo:drawer", "--record", registry)
    assert code == 1
    diverged_id = out.strip().rsplit(" ", 1)[-1]
    # Gate: the diverged record fails even against itself-as-baseline.
    code, out = run_cli(capsys, "regress", "--baseline", clean_id,
                        "--candidate", diverged_id, "--dir", registry,
                        "--ignore-comparability")
    assert code == 1
    assert "replay" in out and "FAIL" in out
    # The clean record passes.
    code, out = run_cli(capsys, "regress", "--baseline", clean_id,
                        "--candidate", clean_id, "--dir", registry)
    assert code == 0 and "PASS" in out


def test_fragility_table(capsys):
    code, out = run_cli(capsys, "fragility", "demo:tabs", "--seed", "7")
    assert code == 0
    assert "unchanged" in out
    assert "rename-widget" in out
    assert "breakages:" in out


def test_fragility_json_and_determinism(capsys):
    code, first = run_cli(capsys, "fragility", "demo:tabs", "--seed",
                          "3", "--json")
    assert code == 0
    code, second = run_cli(capsys, "fragility", "demo:tabs", "--seed",
                           "3", "--json")
    assert first == second
    data = json.loads(first)
    assert data["control_ok"] is True
    assert data["seed"] == 3


def test_fragility_rejects_apk_files(capsys):
    with pytest.raises(SystemExit, match="spec"):
        main(["fragility", "something.apk"])


# ---------------------------------------------------------------------------
# The service commands
# ---------------------------------------------------------------------------

def test_jobs_cli_against_a_live_service(capsys, tmp_path, monkeypatch):
    from repro.serve import ReproServer

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0)
    server.start()
    try:
        monkeypatch.setenv("FRAGDROID_SERVE_URL", server.url)
        code, out = run_cli(capsys, "jobs", "submit",
                            "com.serve.demo.alpha", "--max-events",
                            "200", "--wait")
        assert code == 0 and "done" in out
        code, out = run_cli(capsys, "jobs", "status")
        assert code == 0 and "done" in out
        job_id = out.split()[0]
        code, out = run_cli(capsys, "jobs", "logs", job_id)
        assert code == 0 and "job.state" in out
        # Cancelling a finished job is a typed conflict, exit 1.
        assert run_cli(capsys, "jobs", "cancel", job_id)[0] == 1
        # The finished job is visible to the runs machinery.
        code, out = run_cli(capsys, "runs", "list", "--dir",
                            str(tmp_path / "runs"))
        assert code == 0 and "serve-job" in out
    finally:
        server.stop(timeout=2.0)


def test_jobs_cli_submit_json_output(capsys, tmp_path, monkeypatch):
    from repro.serve import ReproServer

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0)
    server.start()
    try:
        monkeypatch.setenv("FRAGDROID_SERVE_URL", server.url)
        code, out = run_cli(capsys, "jobs", "submit",
                            "com.serve.demo.beta", "--max-events", "200",
                            "--json")
        assert code == 0
        assert json.loads(out)["apps"] == ["com.serve.demo.beta"]
    finally:
        server.stop(timeout=2.0)


def test_jobs_cli_logs_follow_streams_to_completion(capsys, tmp_path,
                                                    monkeypatch):
    from repro.serve import ReproServer

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0)
    server.start()
    try:
        monkeypatch.setenv("FRAGDROID_SERVE_URL", server.url)
        code, out = run_cli(capsys, "jobs", "submit",
                            "com.serve.demo.alpha", "--max-events",
                            "200", "--json")
        job_id = json.loads(out)["job_id"]
        # --follow tails the SSE stream and exits once the job ends.
        code, out = run_cli(capsys, "jobs", "logs", job_id, "--follow")
        assert code == 0
        assert "job.round" in out
        assert "state=done" in out
        # The handler released its subscription (no leaked buffer);
        # its finally-block can lag the client's exit by a beat.
        import threading
        for _ in range(100):
            if server.broker.subscriber_count() == 0:
                break
            threading.Event().wait(0.02)
        assert server.broker.subscriber_count() == 0
    finally:
        server.stop(timeout=2.0)


def test_dashboard_journal_renders_the_service_view(capsys, tmp_path,
                                                    monkeypatch):
    from repro.serve import ReproServer, ServeClient

    server = ReproServer(journal_dir=tmp_path / "journal",
                         registry_dir=tmp_path / "runs", port=0)
    server.start()
    try:
        client = ServeClient(server.url, timeout_s=10.0)
        job = client.submit(["com.serve.demo.alpha"], max_events=200)
        client.wait(job["job_id"], timeout_s=60.0)
    finally:
        server.stop(timeout=2.0)
    out_html = tmp_path / "fleet.html"
    code, out = run_cli(capsys, "dashboard",
                        "--journal", str(tmp_path / "journal"),
                        "--registry", str(tmp_path / "runs"),
                        "-o", str(out_html))
    assert code == 0 and "wrote dashboard" in out
    html_text = out_html.read_text()
    assert "Service fleet" in html_text
    assert job["job_id"] in html_text

    code, out = run_cli(capsys, "dashboard",
                        "--journal", str(tmp_path / "nowhere"))
    assert code == 1 and "journal" in out
    # No directory and no --journal is a usage error, not a traceback.
    code, out = run_cli(capsys, "dashboard")
    assert code == 1 and "--journal" in out


def test_jobs_cli_unreachable_service(capsys, monkeypatch):
    monkeypatch.setenv("FRAGDROID_SERVE_URL", "http://127.0.0.1:1")
    assert run_cli(capsys, "jobs", "status")[0] == 1


def test_jobs_cli_submit_needs_apps(capsys, monkeypatch):
    monkeypatch.setenv("FRAGDROID_SERVE_URL", "http://127.0.0.1:1")
    code, out = run_cli(capsys, "jobs", "submit")
    assert code == 2 and "app names" in out


# ---------------------------------------------------------------------------
# Static cache in the sweeps, profile, and the bench-file regress gate
# ---------------------------------------------------------------------------

def test_study_with_static_cache_reports_hit_rate(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    code, out = run_cli(capsys, "study", "--static-cache", cache_dir)
    assert code == 0
    assert "hit rate 0%" in out
    code, out = run_cli(capsys, "study", "--static-cache", cache_dir)
    assert code == 0
    assert "217 hits" in out
    assert "hit rate 100%" in out


def test_cache_stats_shows_lifetime_hit_rate(capsys, tmp_path):
    cache_dir = str(tmp_path / "cache")
    run_cli(capsys, "study", "--static-cache", cache_dir)
    run_cli(capsys, "study", "--static-cache", cache_dir)
    code, out = run_cli(capsys, "cache", "stats", "--dir", cache_dir)
    assert code == 0
    assert "lifetime hit rate: 50%" in out


def test_profile_from_record_file(capsys):
    code, out = run_cli(capsys, "profile",
                        "benchmarks/baselines/table1_baseline.json",
                        "--top", "3")
    assert code == 0
    assert "top 3 phases by p90 self time" in out
    assert "p90_ms" in out
    # Ranked by p90, so the first data row carries the largest value.
    rows = [line for line in out.splitlines()
            if line and not line.startswith(("run ", "phase"))]
    assert len(rows) == 3


def test_profile_diff_shows_deltas(capsys):
    baseline = "benchmarks/baselines/table1_baseline.json"
    code, out = run_cli(capsys, "profile", baseline, "--diff", baseline)
    assert code == 0
    assert "Δp90_ms" in out
    assert "+0.00" in out  # identical records diff to zero


def test_profile_empty_registry_exits_2(capsys, tmp_path):
    code, out = run_cli(capsys, "profile", "--dir", str(tmp_path / "runs"))
    assert code == 2
    assert "no run records" in out


def test_regress_accepts_bench_result_files(capsys, tmp_path):
    baseline = "benchmarks/baselines/static_perf_baseline.json"
    code, out = run_cli(
        capsys, "regress",
        "--baseline", baseline, "--candidate", baseline,
        "--coverage-key", "apps_per_second",
        "--max-coverage-drop", "0.25",
        "--dir", str(tmp_path / "runs"),
    )
    assert code == 0
    assert "PASS" in out


def test_regress_gates_bench_throughput_drop(capsys, tmp_path):
    slow = tmp_path / "slow.json"
    slow.write_text(json.dumps({
        "schema": 1, "bench": "static_perf_market",
        "data": {"apps": 217, "apps_per_second": 100.0},
    }))
    code, out = run_cli(
        capsys, "regress",
        "--baseline", "benchmarks/baselines/static_perf_baseline.json",
        "--candidate", str(slow),
        "--coverage-key", "apps_per_second",
        "--max-coverage-drop", "0.25",
        "--dir", str(tmp_path / "runs"),
    )
    assert code == 1
    assert "apps_per_second" in out
