"""Ablations over FragDroid's mechanisms (DESIGN.md experiment index).

Disables reflection switching, forced starts, and the Case 3 click sweep
in turn, and adds the analyst-filled input file, on the three apps whose
obstacles isolate each mechanism.
"""

from repro.bench import run_ablation


def _by(rows, package, variant):
    for row in rows:
        if row["package"] == package and row["variant"] == variant:
            return row
    raise KeyError((package, variant))


def test_ablation(benchmark, save_result):
    ablation = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    save_result("ablation", ablation.render())
    rows = ablation.rows

    apm = "com.advancedprocessmanager"
    cnn = "com.cnn.mobile.android.phone"
    weather = "com.weather.Weather"

    # Reflection contributes fragments on the app with menu-only panes.
    assert (_by(rows, apm, "no-reflection")["fragments"]
            < _by(rows, apm, "full")["fragments"])
    # Forced starts contribute activities on the NavigationView app.
    assert (_by(rows, cnn, "no-forced-start")["activities"]
            < _by(rows, cnn, "full")["activities"])
    # The analyst input file unlocks weather's strict-input gates.
    assert (_by(rows, weather, "analyst-inputs")["activities"]
            > _by(rows, weather, "full")["activities"])
    # Without the click sweep, forced starts still recover the exported
    # activities, but dynamic exploration collapses: far fewer events
    # fire because no widget is ever exercised.
    assert (_by(rows, cnn, "no-click-sweep")["events"]
            < _by(rows, cnn, "full")["events"] / 2)
