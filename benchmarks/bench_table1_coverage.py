"""Table I: coverage of Activities and Fragments on the 15 apps.

Regenerates the paper's headline coverage table by running the full
FragDroid pipeline (static extraction, manifest instrumentation,
evolutionary exploration with reflection and forced starts) over every
evaluation app, then prints the per-app Visited/Sum/Rate columns and the
means against the paper's 71.94% / 66%.
"""

from repro.bench import run_table1
from repro.corpus.table1_apps import (
    PAPER_MEAN_ACTIVITY_RATE,
    PAPER_MEAN_FRAGMENT_RATE,
)


def test_table1_coverage(benchmark, save_result, save_result_json):
    run = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1_coverage", run.render_table1())
    report = run.report
    save_result_json("table1_coverage", {
        "apps": len(report.rows),
        "mean_activity_rate": round(report.mean_activity_rate, 6),
        "mean_fragment_rate": round(report.mean_fragment_rate, 6),
        "mean_fiva_rate": round(report.mean_fiva_rate, 6),
        "full_fiva_apps": report.full_fiva_apps(),
        "paper_mean_activity_rate": PAPER_MEAN_ACTIVITY_RATE,
        "paper_mean_fragment_rate": PAPER_MEAN_FRAGMENT_RATE,
    })
    # Shape assertions: the reproduced means sit on the paper's numbers.
    assert abs(report.mean_activity_rate - PAPER_MEAN_ACTIVITY_RATE) < 0.02
    assert abs(report.mean_fragment_rate - PAPER_MEAN_FRAGMENT_RATE) < 0.02
    assert report.mean_fiva_rate > 0.50
    assert report.full_fiva_apps() >= 5
