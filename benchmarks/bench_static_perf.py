"""Market-scale static throughput (Section VII-A: 217 apps analyzed).

Times the usage-study sweep — decode + fragment scan over the whole
market — and a single exploration run, the two phases whose cost governs
a large-scale deployment.  Two gates keep the lexer-rewrite win pinned:

* ``test_lexer_speedup_vs_legacy`` races the dispatch-table lexer
  against the frozen pre-optimization parser (``_legacy_smali``) in the
  same process — a machine-independent ratio assertion;
* the ``static_perf_market`` result JSON feeds ``repro regress
  --coverage-key apps_per_second`` against the committed baseline in
  ``benchmarks/baselines/static_perf_baseline.json`` (CI fails on a
  >25% throughput drop).
"""

import importlib.util
import pathlib
from time import perf_counter

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.bench import run_usage_study
from repro.corpus import build_table1_app
from repro.corpus.market import generate_market

#: Cold best-of; the sweep is deterministic, the clock is not.
_SWEEP_ROUNDS = 3

#: The dispatch-table lexer must stay at least this much faster than the
#: frozen legacy parser on a warmed market-scale corpus.
_MIN_LEXER_SPEEDUP = 2.0


def _load_legacy_parser():
    path = pathlib.Path(__file__).parent / "_legacy_smali.py"
    spec = importlib.util.spec_from_file_location("_legacy_smali", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_market_sweep_throughput(benchmark, save_result_json):
    # Cold path: no StaticCache (run_usage_study default), fresh builds.
    start = perf_counter()
    study = benchmark.pedantic(run_usage_study, rounds=1, iterations=1)
    first = perf_counter() - start
    best = first
    for _ in range(_SWEEP_ROUNDS - 1):
        start = perf_counter()
        run_usage_study()
        best = min(best, perf_counter() - start)
    assert study.total == 217
    save_result_json("static_perf_market", {
        "apps": study.total,
        "packed": study.packed,
        "with_fragments": study.with_fragments,
        "fragment_share": round(study.share, 6),
        "seconds": round(first, 3),
        "seconds_best": round(best, 3),
        "apps_per_second": round(study.total / best, 2),
    })


def test_lexer_speedup_vs_legacy(save_result_json):
    """The single-pass lexer vs the frozen pre-rewrite parser.

    Both arms run in this process over the same market-scale smali
    corpus and share ``repro.smali.model`` (interned refs, cached type
    converters), so the ratio isolates the lexing strategy and holds on
    any machine.  Warm passes are the sweep steady state — the line
    cache is exactly what the rewrite added.
    """
    import repro.smali.assemble as new_asm
    import repro.smali.model as model

    legacy = _load_legacy_parser()
    texts = []
    for app in generate_market(count=217, seed=2018):
        texts.extend(app.build().smali_files.values())

    def run(parse):
        start = perf_counter()
        for text in texts:
            parse(text)
        return perf_counter() - start

    run(legacy.parse_class)  # warm the shared converter caches
    legacy_best = min(run(legacy.parse_class) for _ in range(3))
    new_asm._INSTRUCTION_CACHE.clear()
    model._PARSED_REFS.clear()
    new_cold = run(new_asm.parse_class)
    new_best = min(run(new_asm.parse_class) for _ in range(3))

    ratio_warm = legacy_best / new_best
    ratio_cold = legacy_best / new_cold
    save_result_json("static_perf_lexer", {
        "smali_units": len(texts),
        "legacy_seconds_best": round(legacy_best, 4),
        "new_seconds_cold": round(new_cold, 4),
        "new_seconds_best": round(new_best, 4),
        "speedup_cold": round(ratio_cold, 2),
        "speedup_warm": round(ratio_warm, 2),
    })
    assert ratio_warm >= _MIN_LEXER_SPEEDUP, (
        f"lexer speedup {ratio_warm:.2f}x fell below "
        f"{_MIN_LEXER_SPEEDUP}x vs the legacy parser"
    )


def test_single_app_exploration(benchmark, save_result_json):
    def explore():
        return FragDroid(Device()).explore(
            build_apk(build_table1_app("com.inditex.zara"))
        )

    start = perf_counter()
    result = benchmark.pedantic(explore, rounds=3, iterations=1)
    elapsed = perf_counter() - start
    assert len(result.visited_activities) == 7
    save_result_json("static_perf_single_app", {
        "activities_visited": len(result.visited_activities),
        "fragments_visited": len(result.visited_fragments),
        "events": result.stats.events,
        "rounds": 3,
        "seconds_3_rounds": round(elapsed, 3),
    })
