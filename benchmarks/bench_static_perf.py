"""Market-scale static throughput (Section VII-A: 217 apps analyzed).

Times the usage-study sweep — decode + fragment scan over the whole
market — and a single exploration run, the two phases whose cost governs
a large-scale deployment.
"""

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.bench import run_usage_study
from repro.corpus import build_table1_app


def test_market_sweep_throughput(benchmark):
    study = benchmark.pedantic(run_usage_study, rounds=1, iterations=1)
    assert study.total == 217


def test_single_app_exploration(benchmark):
    def explore():
        return FragDroid(Device()).explore(
            build_apk(build_table1_app("com.inditex.zara"))
        )

    result = benchmark.pedantic(explore, rounds=3, iterations=1)
    assert len(result.visited_activities) == 7
