"""Market-scale static throughput (Section VII-A: 217 apps analyzed).

Times the usage-study sweep — decode + fragment scan over the whole
market — and a single exploration run, the two phases whose cost governs
a large-scale deployment.
"""

from time import perf_counter

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.bench import run_usage_study
from repro.corpus import build_table1_app


def test_market_sweep_throughput(benchmark, save_result_json):
    start = perf_counter()
    study = benchmark.pedantic(run_usage_study, rounds=1, iterations=1)
    elapsed = perf_counter() - start
    assert study.total == 217
    save_result_json("static_perf_market", {
        "apps": study.total,
        "packed": study.packed,
        "with_fragments": study.with_fragments,
        "fragment_share": round(study.share, 6),
        "seconds": round(elapsed, 3),
        "apps_per_second": round(study.total / elapsed, 2),
    })


def test_single_app_exploration(benchmark, save_result_json):
    def explore():
        return FragDroid(Device()).explore(
            build_apk(build_table1_app("com.inditex.zara"))
        )

    start = perf_counter()
    result = benchmark.pedantic(explore, rounds=3, iterations=1)
    elapsed = perf_counter() - start
    assert len(result.visited_activities) == 7
    save_result_json("static_perf_single_app", {
        "activities_visited": len(result.visited_activities),
        "fragments_visited": len(result.visited_fragments),
        "events": result.stats.events,
        "rounds": 3,
        "seconds_3_rounds": round(elapsed, 3),
    })
