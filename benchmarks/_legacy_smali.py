"""Frozen copy of the pre-optimization smali parser (reference arm).

This is the per-line ``startswith``-chain lexer the single-pass
dispatch-table rewrite in ``repro.smali.assemble`` replaced, kept
verbatim so ``bench_static_perf`` can measure the speedup *in the same
process on the same machine* — a ratio pin that travels across hardware,
unlike committed wall-clock numbers.  It shares ``repro.smali.model``
(and therefore the interned ``MethodRef.parse`` and cached type
converters) with the new lexer, so the measured ratio isolates the
lexing strategy itself.

Not a public API; nothing outside the benchmarks imports this.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import SmaliError
from repro.smali.model import (
    Instruction,
    MethodRef,
    SmaliClass,
    SmaliField,
    SmaliMethod,
    java_name,
)


def parse_class(text: str) -> SmaliClass:
    """Parse smali text (pre-optimization reference implementation)."""
    cls: SmaliClass = SmaliClass(name="__pending__")
    method: SmaliMethod = SmaliMethod(name="__none__")
    in_method = False
    seen_class = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith(".class"):
            cls.name = java_name(line.split()[-1])
            seen_class = True
        elif line.startswith(".super"):
            cls.super_name = java_name(line.split()[-1])
        elif line.startswith(".source"):
            cls.source = line.split('"')[1]
        elif line.startswith(".implements"):
            cls.interfaces.append(java_name(line.split()[-1]))
        elif line.startswith(".field"):
            static = " static " in line + " "
            decl = line.split()[-1]
            name, _, descriptor = decl.partition(":")
            cls.fields.append(
                SmaliField(name=name, type=java_name(descriptor), static=static)
            )
        elif line.startswith(".method"):
            method = _parse_method_header(line)
            in_method = True
        elif line.startswith(".registers"):
            method.registers = int(line.split()[-1])
        elif line.startswith(".end method"):
            cls.methods.append(method)
            in_method = False
        elif in_method:
            method.instructions.append(_parse_instruction(line))
    if not seen_class:
        raise SmaliError("no .class directive found")
    return cls


def _parse_method_header(line: str) -> SmaliMethod:
    # ".method public [static] name(params)ret"
    static = " static " in line
    signature = line.split()[-1]
    name, rest = signature.split("(", 1)
    params_str, ret = rest.split(")", 1)
    params = [java_name(d) for d in _split_descriptors(params_str)]
    return SmaliMethod(name=name, params=params, ret=java_name(ret), static=static)


def _split_descriptors(text: str) -> List[str]:
    out: List[str] = []
    index = 0
    while index < len(text):
        start = index
        while text[index] == "[":
            index += 1
        if text[index] == "L":
            index = text.index(";", index) + 1
        else:
            index += 1
        out.append(text[start:index])
    return out


def _parse_instruction(line: str) -> Instruction:
    if line.startswith(":"):
        return Instruction("label", (line[1:],))
    opcode, _, rest = line.partition(" ")
    rest = rest.strip()
    if opcode in ("return-void", "nop"):
        return Instruction(opcode)
    if opcode == "goto":
        return Instruction(opcode, (rest.lstrip(":"),))
    if opcode in ("if-eqz", "if-nez"):
        reg, label = _split_args(rest, 2)
        return Instruction(opcode, (reg, label.lstrip(":")))
    if opcode == "const-string":
        reg, literal = rest.split(", ", 1)
        value = literal.strip()[1:-1].replace('\\"', '"').replace("\\\\", "\\")
        return Instruction(opcode, (reg, value))
    if opcode in ("const-class", "new-instance", "check-cast"):
        reg, descriptor = _split_args(rest, 2)
        return Instruction(opcode, (reg, java_name(descriptor)))
    if opcode == "instance-of":
        dest, src, descriptor = _split_args(rest, 3)
        return Instruction(opcode, (dest, src, java_name(descriptor)))
    if opcode in ("const", "const/4"):
        reg, value = _split_args(rest, 2)
        return Instruction(opcode, (reg, int(value, 16)))
    if opcode in ("move-result-object", "move-result", "return-object"):
        return Instruction(opcode, (rest,))
    if opcode in ("iget-object", "iput-object"):
        reg, obj, ref = _split_args(rest, 3)
        return Instruction(opcode, (reg, obj, ref))
    if opcode.startswith("invoke-"):
        regs_part, _, ref_part = rest.partition("}, ")
        regs_part = regs_part.lstrip("{")
        regs: Tuple[str, ...] = tuple(
            r.strip() for r in regs_part.split(",") if r.strip()
        )
        ref = MethodRef.parse(ref_part.strip())
        return Instruction(opcode, regs + (ref,))
    raise SmaliError(f"cannot parse instruction: {line!r}")


def _split_args(rest: str, count: int) -> List[str]:
    parts = [p.strip() for p in rest.split(",")]
    if len(parts) != count:
        raise SmaliError(f"expected {count} operands in {rest!r}")
    return parts
