"""Static-phase micro-benchmarks: AFTM extraction throughput.

Times the full Static Information Extraction (Apktool decode, effective
components, Algorithm 1 edges, Algorithms 2–3 dependencies) on the
largest evaluation app — the phase a market-scale deployment repeats per
APK.
"""

from repro.apk import build_apk
from repro.corpus import build_table1_app
from repro.static import extract_static_info
from repro.static.aftm import EdgeKind


def test_aftm_extraction_largest_app(benchmark):
    apk = build_apk(build_table1_app("com.ovuline.pregnancy"))
    info = benchmark(extract_static_info, apk)
    assert len(info.activities) == 27
    assert len(info.fragments) == 37
    assert info.aftm.edges_of_kind(EdgeKind.E2)


def test_aftm_extraction_median_app(benchmark):
    apk = build_apk(build_table1_app("com.aircrunch.shopalerts"))
    info = benchmark(extract_static_info, apk)
    assert len(info.activities) == 10


def test_apk_compile_largest_app(benchmark):
    build = lambda: build_apk(build_table1_app("com.ovuline.pregnancy"))
    apk = benchmark(build)
    assert apk.package == "com.ovuline.pregnancy"
