"""Benchmark harness support: result persistence.

Two output channels per experiment:

* ``save_result`` — the rendered human-readable table
  (``benchmarks/results/<name>.txt``), unchanged since PR 1;
* ``save_result_json`` / :func:`write_result_json` — the same numbers
  as schema-versioned machine-readable JSON
  (``benchmarks/results/<name>.json``), the shape the longitudinal
  run registry ingests (``repro runs ingest benchmarks/results/*.json``)
  so bench trajectories can be diffed run-over-run like sweeps.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Bump when the result-file shape changes; the registry refuses to
#: ingest files without a recognizable schema marker.
RESULT_SCHEMA = 1


def write_result_json(name: str, data: Dict) -> pathlib.Path:
    """Persist one benchmark's numbers as schema-versioned JSON.

    ``data`` should be a (possibly nested) dict of numeric leaves —
    exactly what ``RunRegistry.ingest_bench`` flattens into a run
    record's coverage section.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    payload = {"schema": RESULT_SCHEMA, "bench": name, "data": data}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


@pytest.fixture
def save_result():
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[saved {path}]\n{text}")

    return _save


@pytest.fixture
def save_result_json():
    """Fixture face of :func:`write_result_json` (prints the path)."""

    def _save(name: str, data: Dict) -> pathlib.Path:
        path = write_result_json(name, data)
        print(f"\n[saved {path}]")
        return path

    return _save
