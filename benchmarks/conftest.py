"""Benchmark harness support: result persistence."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_result():
    """Persist a rendered experiment table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[saved {path}]\n{text}")

    return _save
