"""Extension bench: input-generation strategies (paper Section VIII).

The paper names better input generation as future work; this bench
measures the implemented heuristic generator against the default "abc"
filler and the analyst input file on com.weather.Weather, whose strict
inputs the paper singles out.
"""

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.corpus import build_table1_app
from repro.corpus.synth import LOGIN_SECRET


def _run_strategies():
    package = "com.weather.Weather"
    secrets = {f"password_{i:02d}": LOGIN_SECRET for i in range(4)}
    variants = {
        "default": FragDroidConfig(),
        "heuristic": FragDroidConfig(input_strategy="heuristic"),
        "analyst": FragDroidConfig(input_values=secrets),
        "analyst+heuristic": FragDroidConfig(
            input_values=secrets, input_strategy="heuristic"
        ),
    }
    out = {}
    for name, config in variants.items():
        result = FragDroid(Device(), config).explore(
            build_apk(build_table1_app(package))
        )
        out[name] = result
    return out


def test_input_generation(benchmark, save_result):
    results = benchmark.pedantic(_run_strategies, rounds=1, iterations=1)
    lines = [f"{'strategy':20} {'activities':>11} {'events':>7}"]
    for name, result in results.items():
        lines.append(
            f"{name:20} "
            f"{len(result.visited_activities):4d}/{result.activity_total:<4d}"
            f" {result.stats.events:>7}"
        )
    save_result("input_generation", "\n".join(lines))

    default = len(results["default"].visited_activities)
    heuristic = len(results["heuristic"].visited_activities)
    analyst = len(results["analyst"].visited_activities)
    combined = len(results["analyst+heuristic"].visited_activities)
    # The heuristic unlocks the rule-gated searches; the analyst file
    # unlocks the exact-secret logins; together they open everything.
    assert heuristic > default
    assert analyst > default
    assert combined == results["default"].activity_total
