"""Quantifying Challenge 2: random testing vs the hidden drawer.

The paper argues Monkey "can occasionally reach these Fragments" but
cannot be controlled.  This bench measures that occasionality: across
many seeds, how often does Monkey stumble into the drawer-bridged
fragment of the Figure 2 app under FragDroid's event budget?  FragDroid
finds it on every run by construction.
"""

import numpy as np

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import Monkey
from repro.corpus import demo_drawer_app

N_SEEDS = 30
TARGET = "com.example.slidemenu.FavoritesFragment"


def _measure():
    frag_result = FragDroid(Device()).explore(build_apk(demo_drawer_app()))
    budget = frag_result.stats.events
    hits = []
    events_to_hit = []
    for seed in range(N_SEEDS):
        monkey_result = Monkey(Device(), seed=seed).run(
            build_apk(demo_drawer_app()), event_count=budget
        )
        hit = TARGET in monkey_result.visited_fragment_classes
        hits.append(hit)
    return frag_result, np.array(hits, dtype=bool), budget


def test_monkey_variance(benchmark, save_result):
    frag_result, hits, budget = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    rate = hits.mean()
    # Wilson-style standard error for the report.
    se = float(np.sqrt(rate * (1 - rate) / len(hits))) if len(hits) else 0.0
    text = (
        f"event budget (from FragDroid's run): {budget}\n"
        f"FragDroid reaches the drawer fragment: 100% (deterministic)\n"
        f"Monkey reaches it in {int(hits.sum())}/{len(hits)} seeds "
        f"= {rate:.0%} ± {se:.0%}"
    )
    save_result("monkey_variance", text)
    assert TARGET in frag_result.visited_fragments
    # The paper's qualitative claim: occasional, not reliable.
    assert 0.0 < rate < 1.0
