"""Scale characteristics: a market-sized app and sweep cost growth.

The paper contrasts its cost with A3E's 87–104 minutes per app; on our
substrate absolute times are not comparable, but the *growth* of
exploration cost with app size is, and it should stay near-linear in
the number of interfaces (each interface is processed once — the
processed-signature set guards against re-sweeps).
"""

from repro import Device, FragDroid, FragDroidConfig
from repro.apk import build_apk
from repro.corpus.synth import AppPlan, build_app


def _plan(n_activities: int, n_fragments: int) -> AppPlan:
    return AppPlan(
        package=f"com.scale.a{n_activities}f{n_fragments}",
        visited_activities=n_activities,
        visited_fragments=n_fragments,
    )


def test_large_app_exploration(benchmark):
    """A 60-activity / 40-fragment app — well past the corpus maximum."""
    apk = build_apk(build_app(_plan(60, 40)))

    def explore():
        return FragDroid(Device(),
                         FragDroidConfig(max_events=60000)).explore(apk)

    result = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert len(result.visited_activities) == 60
    assert len(result.visited_fragments) == 40


def test_exploration_cost_near_linear(benchmark, save_result):
    def sweep():
        costs = {}
        for size in (5, 10, 20, 40):
            apk = build_apk(build_app(_plan(size, size // 2)))
            result = FragDroid(
                Device(), FragDroidConfig(max_events=60000)
            ).explore(apk)
            assert len(result.visited_activities) == size
            costs[size] = result.stats.events
        return costs

    costs = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [f"{'activities':>10} {'events':>8} {'events/activity':>16}"]
    for size, events in costs.items():
        lines.append(f"{size:>10} {events:>8} {events / size:>16.1f}")
    save_result("scale", "\n".join(lines))
    # Per-activity cost must not blow up with app size (no re-sweeps).
    per_activity = [events / size for size, events in costs.items()]
    assert max(per_activity) < 4 * min(per_activity)