"""Table II: sensitive operations detection.

Regenerates the API × app matrix with the ●/◗/⊙ classification and the
paper's aggregates: 46 APIs found, ~49% of invocation relations
associated with Fragments, and the ≥9.6% share that Activity-level
tools must miss.
"""

from repro.bench import run_table1


def test_table2_sensitive_apis(benchmark, save_result):
    run = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table2_sensitive_apis", run.render_table2())
    report = run.api_report
    assert report.distinct_apis_found == 46
    assert abs(report.fragment_associated_share - 0.49) < 0.05
    assert abs(report.fragment_only_share - 0.096) < 0.02
    # The failure-mode columns stay empty, as in the paper.
    assert "com.mobilemotion.dubsmash" not in report.packages
    assert "com.where2get.android.app" not in report.packages
