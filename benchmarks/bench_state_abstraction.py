"""Challenge 1 quantified: UI states under the two abstractions.

The paper's core argument: treating the Activity as one fixed UI state
hides every Fragment transformation.  This bench counts, for each
evaluation app, the distinct fragment-level interfaces FragDroid
processed versus the Activity count (the maximum any Activity-grained
tool can distinguish).
"""

from repro.bench.parallel import explore_many, unwrap_results
from repro.corpus import TABLE1_PLANS


def _collect():
    return unwrap_results(explore_many(TABLE1_PLANS, max_workers=4))


def test_state_abstraction(benchmark, save_result):
    results = benchmark.pedantic(_collect, rounds=1, iterations=1)
    header = (f"{'package':34} {'activity-states':>15} "
              f"{'fragment-level states':>22} {'gain':>6}")
    lines = [header, "-" * len(header)]
    total_activity_states = 0
    total_fragment_states = 0
    for package, result in sorted(results.items()):
        activity_states = len(result.visited_activities)
        fragment_states = result.stats.distinct_interfaces
        total_activity_states += activity_states
        total_fragment_states += fragment_states
        gain = (fragment_states / activity_states
                if activity_states else 0.0)
        lines.append(
            f"{package:34} {activity_states:>15} {fragment_states:>22} "
            f"{gain:>5.1f}x"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'TOTAL':34} {total_activity_states:>15} "
        f"{total_fragment_states:>22} "
        f"{total_fragment_states / total_activity_states:>5.1f}x"
    )
    save_result("state_abstraction", "\n".join(lines))

    # The fragment-aware abstraction distinguishes strictly more states
    # in aggregate and on fragment-heavy apps in particular.
    assert total_fragment_states > total_activity_states
    apm = results["com.advancedprocessmanager"]
    assert apm.stats.distinct_interfaces > len(apm.visited_activities)