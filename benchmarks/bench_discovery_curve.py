"""Discovery curves: coverage as a function of the event budget.

FragDroid's model-guided exploration front-loads discovery; Monkey's
random walk accumulates slowly and plateaus below.  Sampled at budget
checkpoints on a fragment-heavy corpus app, with scipy-backed binomial
intervals for the Monkey side.
"""

import numpy as np
from scipy import stats

from repro import Device, FragDroid
from repro.apk import build_apk
from repro.baselines import Monkey
from repro.core.artifacts import coverage_curve
from repro.corpus import build_table1_app

PACKAGE = "com.advancedprocessmanager"
CHECKPOINTS = (0.25, 0.5, 0.75, 1.0)
MONKEY_SEEDS = range(8)


def _measure():
    result = FragDroid(Device()).explore(build_apk(build_table1_app(PACKAGE)))
    budget = result.stats.events
    curve = coverage_curve(result)

    def fragdroid_at(step_limit):
        best = (0, 0)
        for step, activities, fragments in curve:
            if step <= step_limit:
                best = (activities, fragments)
        return best

    rows = []
    for fraction in CHECKPOINTS:
        limit = int(budget * fraction)
        frag_a, frag_f = fragdroid_at(limit)
        monkey_f = []
        for seed in MONKEY_SEEDS:
            monkey = Monkey(Device(), seed=seed).run(
                build_apk(build_table1_app(PACKAGE)), event_count=limit
            )
            monkey_f.append(len(monkey.visited_fragment_classes))
        rows.append({
            "fraction": fraction,
            "events": limit,
            "fragdroid_activities": frag_a,
            "fragdroid_fragments": frag_f,
            "monkey_fragments_mean": float(np.mean(monkey_f)),
            "monkey_fragments_sem": float(stats.sem(monkey_f))
            if len(monkey_f) > 1 else 0.0,
        })
    return result, rows


def test_discovery_curve(benchmark, save_result):
    result, rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    header = (f"{'budget':>7} {'events':>7} {'FragDroid A':>12} "
              f"{'FragDroid F':>12} {'Monkey F (mean±sem)':>22}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['fraction']:>6.0%} {row['events']:>7} "
            f"{row['fragdroid_activities']:>12} "
            f"{row['fragdroid_fragments']:>12} "
            f"{row['monkey_fragments_mean']:>15.1f}"
            f" ± {row['monkey_fragments_sem']:.1f}"
        )
    save_result("discovery_curve", "\n".join(lines))

    final = rows[-1]
    # At full budget FragDroid identifies every fragment; Monkey's
    # random walk averages below (it lacks reflection and a model).
    assert final["fragdroid_fragments"] == len(result.visited_fragments)
    assert final["monkey_fragments_mean"] <= final["fragdroid_fragments"]
    # The curve is monotone.
    frags = [row["fragdroid_fragments"] for row in rows]
    assert frags == sorted(frags)