"""Parallel sweep + static cache benchmark.

Times the two market-scale levers this repo has for wall-clock:

* the sweep backends — the usage study and the Table-I sweep at 1/2/4/8
  workers on both the thread and the process pool.  The work is
  pure-Python CPU, so the thread pool serializes on the GIL; on a
  multi-core box the process pool is expected >=2x faster at 4+ workers
  (the assertion is gated on ``os.cpu_count()`` — a single-core runner
  can only record the numbers, not the speedup);
* the content-addressed static cache — cold vs warm extraction over the
  Table-I corpus; a warm pass skips decode + Algorithms 1-3 and must be
  >=5x faster.

Every timed variant is also checked for *equivalence*: identical study
tallies and identical sweep rows regardless of worker count or backend.
Raw numbers land in ``benchmarks/results/parallel_sweep.json``.
"""

import json
import os
import pathlib
from time import perf_counter

from repro.apk import build_apk
from repro.bench.parallel import explore_many, sweep_rows
from repro.bench.runner import run_usage_study
from repro.corpus import TABLE1_PLANS, build_app
from repro.static import extract_static_info
from repro.static.cache import StaticCache

RESULTS_PATH = (pathlib.Path(__file__).parent / "results"
                / "parallel_sweep.json")
WORKER_COUNTS = (1, 2, 4, 8)
STUDY_COUNT = 217
SEED = 2018


def _timed(fn):
    started = perf_counter()
    value = fn()
    return perf_counter() - started, value


def _strip_durations(rows):
    return [{k: v for k, v in row.items() if k != "duration_s"}
            for row in rows]


def _run_all():
    record = {
        "cpu_count": os.cpu_count(),
        "usage_study": {"count": STUDY_COUNT, "seed": SEED,
                        "thread": {}, "process": {}},
        "table1_sweep": {"apps": len(TABLE1_PLANS),
                         "thread": {}, "process": {}},
        "static_cache": {},
    }

    serial_s, study_baseline = _timed(lambda: run_usage_study(
        count=STUDY_COUNT, seed=SEED))
    record["usage_study"]["serial_s"] = serial_s
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            duration, study = _timed(lambda: run_usage_study(
                count=STUDY_COUNT, seed=SEED, max_workers=workers,
                backend=backend))
            assert study == study_baseline, (backend, workers)
            record["usage_study"][backend][str(workers)] = duration

    rows_baseline = None
    for backend in ("thread", "process"):
        for workers in WORKER_COUNTS:
            duration, outcomes = _timed(lambda: explore_many(
                TABLE1_PLANS, max_workers=workers, backend=backend))
            rows = _strip_durations(sweep_rows(outcomes))
            if rows_baseline is None:
                rows_baseline = rows
            assert rows == rows_baseline, (backend, workers)
            record["table1_sweep"][backend][str(workers)] = duration

    apks = [build_apk(build_app(plan)) for plan in TABLE1_PLANS]
    cache = StaticCache()
    cold_s, _ = _timed(lambda: [extract_static_info(apk, cache=cache)
                                for apk in apks])
    warm_s, _ = _timed(lambda: [extract_static_info(apk, cache=cache)
                                for apk in apks])
    assert cache.misses == len(apks) and cache.hits == len(apks)
    record["static_cache"] = {
        "apps": len(apks),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s if warm_s else float("inf"),
    }
    return record


def test_parallel_sweep(benchmark, save_result):
    record = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                            + "\n")

    study = record["usage_study"]
    lines = [f"parallel sweep (cpus: {record['cpu_count']})", "",
             f"usage study ({STUDY_COUNT} apps), serial: "
             f"{study['serial_s']:.2f}s"]
    for backend in ("thread", "process"):
        timings = "  ".join(
            f"{w}w={study[backend][str(w)]:.2f}s" for w in WORKER_COUNTS)
        lines.append(f"  {backend:>8}: {timings}")
    table1 = record["table1_sweep"]
    lines.append(f"Table-I sweep ({table1['apps']} apps)")
    for backend in ("thread", "process"):
        timings = "  ".join(
            f"{w}w={table1[backend][str(w)]:.2f}s" for w in WORKER_COUNTS)
        lines.append(f"  {backend:>8}: {timings}")
    cache = record["static_cache"]
    lines.append(f"static cache: cold {cache['cold_s']:.2f}s, "
                 f"warm {cache['warm_s']:.3f}s "
                 f"({cache['speedup']:.0f}x)")
    save_result("parallel_sweep", "\n".join(lines))
    print(f"[saved {RESULTS_PATH}]")

    # The cache bar holds everywhere: a warm pass skips decode and
    # Algorithms 1-3, leaving only JSON rehydration.
    assert cache["speedup"] >= 5, cache

    # The backend bar needs actual cores: the GIL comparison is
    # meaningless on a single-core runner.
    cpus = record["cpu_count"] or 1
    if cpus >= 4:
        thread_4w = study["thread"]["4"]
        process_4w = study["process"]["4"]
        assert process_4w * 2 <= thread_4w, (
            f"process backend at 4 workers ({process_4w:.2f}s) is not "
            f">=2x faster than thread ({thread_4w:.2f}s)"
        )
