"""FragDroid vs the traditional tools (Sections I, VII-C, IX).

Equal-budget comparison on five evaluation apps: FragDroid,
Activity-level MBT (A3E/TrimDroid style), depth-first exploration, and
Monkey.  The shape to reproduce: FragDroid wins on Fragment coverage
and is the only tool that both reaches and correctly attributes the
fragment-only sensitive APIs.
"""

from repro.bench import run_baseline_comparison


def test_baseline_comparison(benchmark, save_result):
    comparison = benchmark.pedantic(run_baseline_comparison,
                                    rounds=1, iterations=1)
    save_result("baseline_comparison", comparison.render())

    by_tool = {}
    for row in comparison.rows:
        by_tool.setdefault(row["tool"], []).append(row)

    # FragDroid's identified fragment coverage dominates the baseline's
    # (which is structurally zero) on every app.
    assert all(r["fragments"] > 0 for r in by_tool["FragDroid"])
    assert all(r["fragments"] == 0 for r in by_tool["Activity-MBT"])
    # At least one app has fragment-only APIs the baseline misses.
    misses = [r["fragment_misses"] for r in by_tool["Activity-MBT"]]
    assert any(m > 0 for m in misses if isinstance(m, int))
    # Activity coverage: FragDroid >= monkey on most apps.
    frag_acts = {r["package"]: r["activities"] for r in by_tool["FragDroid"]}
    monkey_acts = {r["package"]: r["activities"] for r in by_tool["Monkey"]}
    wins = sum(frag_acts[p] >= monkey_acts[p] for p in frag_acts)
    assert wins >= len(frag_acts) - 1
