"""Static vs dynamic sensitive-API discovery.

The static call graph over-approximates (every branch taken, every
popup clicked); the dynamic run under-approximates (only visited code
fires).  This bench quantifies both directions across the corpus:

* every dynamically observed (component, api) pair must be statically
  reachable (soundness of the monitor w.r.t. the code);
* the static-only remainder concentrates in unvisited components —
  the coverage gap of Table I, seen through the API lens.
"""

from repro.bench.parallel import explore_many, unwrap_results
from repro.corpus import TABLE1_PLANS
from repro.static.callgraph import statically_reachable_apis


def _collect():
    results = unwrap_results(explore_many(TABLE1_PLANS, max_workers=4))
    rows = []
    for package, result in sorted(results.items()):
        decoded = result.info.decoded
        assert decoded is not None, "fresh extraction always carries the DEX"
        components = result.info.activities + result.info.fragments
        static_map = statically_reachable_apis(decoded, components)
        dynamic_map = {}
        for invocation in result.api_invocations:
            dynamic_map.setdefault(invocation.component.cls, set()).add(
                invocation.api
            )
        static_pairs = {(c, a) for c, apis in static_map.items()
                        for a in apis}
        dynamic_pairs = {(c, a) for c, apis in dynamic_map.items()
                         for a in apis}
        visited = set(result.visited_activities) | set(
            result.visited_fragments
        )
        static_only = static_pairs - dynamic_pairs
        static_only_unvisited = {(c, a) for c, a in static_only
                                 if c not in visited}
        rows.append({
            "package": package,
            "static": len(static_pairs),
            "dynamic": len(dynamic_pairs),
            "unsound": len(dynamic_pairs - static_pairs),
            "static_only": len(static_only),
            "in_unvisited": len(static_only_unvisited),
        })
    return rows


def test_static_vs_dynamic_apis(benchmark, save_result):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    header = (f"{'package':34} {'static':>7} {'dynamic':>8} "
              f"{'static-only':>12} {'of which unvisited':>19}")
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['package']:34} {row['static']:>7} {row['dynamic']:>8} "
            f"{row['static_only']:>12} {row['in_unvisited']:>19}"
        )
    save_result("static_vs_dynamic_apis", "\n".join(lines))

    # Soundness: nothing observed dynamically is statically unreachable.
    assert all(row["unsound"] == 0 for row in rows)
    # The static analysis over-approximates somewhere (popup-locked
    # API placements, unvisited components).
    assert any(row["static_only"] > 0 for row in rows)