"""Section I usage study: 91% of 217 top apps use Fragments.

Decodes every market APK with the Apktool equivalent and runs the
effective-Fragment superclass scan; packed apps fall out exactly as the
paper's Section VII-A describes.
"""

from repro.bench import run_usage_study


def test_fragment_usage_study(benchmark, save_result):
    study = benchmark.pedantic(run_usage_study, rounds=1, iterations=1)
    save_result("fragment_usage_study", study.render())
    assert study.total == 217
    assert study.categories == 27
    assert abs(study.share - 0.91) < 0.03
    assert study.packed > 0
