"""Observability opt-in contract (repro.obs).

Guarantees behind ``FragDroidConfig.tracer`` / ``event_log``:

* results are tracer- and event-log-independent — an instrumented
  Table-I sweep renders a table byte-identical to the no-op run's;
* the no-op path is ~free: the per-call cost of the null span/counter
  (and the null event emit), multiplied by the number of observability
  call sites a traced sweep actually exercises, stays under 5% of the
  sweep's wall time;
* the *enabled* flight recorder stays cheap too: a real ``emit`` per
  recorded event accounts for under 5% of the sweep's wall time.
"""

from time import perf_counter

from repro import FragDroidConfig
from repro.bench import run_table1
from repro.obs import NULL_EVENT_LOG, NULL_TRACER, EventLog, Tracer


def _null_call_cost(calls: int = 100_000) -> float:
    """Seconds per (span + counter + histogram) no-op round."""
    start = perf_counter()
    for _ in range(calls):
        with NULL_TRACER.span("x", app="y"):
            NULL_TRACER.inc("c")
            NULL_TRACER.observe("h", 1)
    return (perf_counter() - start) / calls


def _observability_call_sites(tracer: Tracer) -> int:
    """How many tracer operations one traced sweep performed."""
    spans = len(tracer.finished_spans())
    counter_calls = sum(
        stats["count"] for stats in
        tracer.metrics.snapshot()["histograms"].values()
    )
    # Every counter increment is one call; the bulk accumulators
    # (events.injected, apis.observed) are one call per app, the rest
    # increment by 1 per call.
    apps = int(tracer.metrics.counter("sweep.apps"))
    for name, value in tracer.metrics.counters().items():
        if name in ("events.injected", "apis.observed"):
            counter_calls += apps
        else:
            counter_calls += int(value)
    return spans + counter_calls


def _null_emit_cost(calls: int = 100_000) -> float:
    """Seconds per no-op flight-recorder emit."""
    start = perf_counter()
    for _ in range(calls):
        NULL_EVENT_LOG.emit("widget.clicked", step=1, app="y", widget="w")
    return (perf_counter() - start) / calls


def _real_emit_cost(calls: int = 100_000) -> float:
    """Seconds per enabled (in-memory) flight-recorder emit."""
    log = EventLog()
    start = perf_counter()
    for _ in range(calls):
        log.emit("widget.clicked", step=1, app="y", widget="w")
    return (perf_counter() - start) / calls


def test_tracing_does_not_change_results(save_result, save_result_json):
    noop = run_table1(max_workers=1)
    tracer = Tracer()
    traced = run_table1(FragDroidConfig(tracer=tracer), max_workers=1)
    assert traced.render_table1() == noop.render_table1()
    assert traced.render_table2() == noop.render_table2()
    save_result("obs_traced_counters", tracer.metrics.render())
    save_result_json("obs_traced_counters",
                     {"counters": tracer.metrics.counters()})


def test_event_log_does_not_change_results():
    noop = run_table1(max_workers=1)
    recorded = run_table1(FragDroidConfig(event_log=EventLog()),
                          max_workers=1)
    assert recorded.render_table1() == noop.render_table1()
    assert recorded.render_table2() == noop.render_table2()


def test_noop_tracer_overhead(benchmark, save_result, save_result_json):
    run_table1(max_workers=1)  # warm caches before timing

    start = perf_counter()
    benchmark.pedantic(run_table1, kwargs={"max_workers": 1},
                       rounds=1, iterations=1)
    noop_seconds = perf_counter() - start

    tracer = Tracer()
    start = perf_counter()
    run_table1(FragDroidConfig(tracer=tracer), max_workers=1)
    traced_seconds = perf_counter() - start

    call_sites = _observability_call_sites(tracer)
    per_call = _null_call_cost()
    noop_cost = per_call * call_sites
    share = noop_cost / noop_seconds

    lines = [
        f"table-I sweep, no-op tracer:   {noop_seconds:8.3f} s",
        f"table-I sweep, tracing on:     {traced_seconds:8.3f} s "
        f"({traced_seconds / noop_seconds - 1:+.1%})",
        f"observability call sites:      {call_sites:8d}",
        f"null-path cost per call:       {per_call * 1e9:8.1f} ns",
        f"null-path share of the sweep:  {share:8.2%} (budget: 5%)",
    ]
    save_result("obs_overhead", "\n".join(lines))
    save_result_json("obs_overhead", {
        "noop_sweep_seconds": round(noop_seconds, 4),
        "traced_sweep_seconds": round(traced_seconds, 4),
        "call_sites": call_sites,
        "null_call_ns": round(per_call * 1e9, 2),
        "null_share": round(share, 6),
    })
    assert share < 0.05, (
        f"no-op observability path costs {share:.2%} of a Table-I sweep"
    )


def _real_span_cost(calls: int = 50_000) -> float:
    """Seconds per enabled trace-bound span (enter + exit + record)."""
    tracer = Tracer()
    start = perf_counter()
    for _ in range(calls):
        with tracer.trace_span("x", 1, app="y"):
            pass
    return (perf_counter() - start) / calls


def _real_observe_cost(calls: int = 100_000) -> float:
    """Seconds per enabled histogram observation."""
    from repro.obs import Metrics

    metrics = Metrics()
    start = perf_counter()
    for _ in range(calls):
        metrics.observe("h", 1.0)
    return (perf_counter() - start) / calls


def test_serve_telemetry_overhead(tmp_path, save_result,
                                  save_result_json):
    """Service-mode telemetry — the queue-wait/latency histograms, the
    trace-bound job/round spans and the broker-hooked flight recorder —
    stays under 5% of a job's wall time even *enabled*.

    Same stable methodology as the other pins: per-operation cost
    measured in isolation, multiplied by the operations one real job
    performs, compared against the untelemetered job's wall time."""
    from repro.obs import NULL_EVENT_LOG, NULL_TRACER
    from repro.obs.registry import RunRegistry
    from repro.serve import EventBroker, Job, JobJournal, JobQueue, Scheduler

    apps = ["com.serve.demo.alpha", "com.serve.demo.beta"]

    def run_job(tracer, event_log, tag):
        scheduler = Scheduler(
            queue=JobQueue(metrics=tracer.metrics),
            journal=JobJournal(tmp_path / tag / "journal"),
            registry=RunRegistry(tmp_path / tag / "runs"),
            tracer=tracer,
            event_log=event_log,
        )
        job = Job(apps=apps, max_events=200, trace_id=1)
        scheduler.queue.submit(job)
        start = perf_counter()
        scheduler.run_job(job)
        assert job.state == "done"
        return perf_counter() - start

    run_job(NULL_TRACER, NULL_EVENT_LOG, "warm")  # warm caches
    noop_seconds = run_job(NULL_TRACER, NULL_EVENT_LOG, "noop")

    tracer = Tracer()
    log = EventLog(sinks=[EventBroker(metrics=tracer.metrics)])
    run_job(tracer, log, "telemetry")

    spans = len(tracer.finished_spans())
    observations = sum(stats["count"] for stats in
                       tracer.metrics.snapshot()["histograms"].values())
    emits = len(log.events())
    assert spans > 0 and observations > 0 and emits > 0

    cost = (_real_span_cost() * spans
            + _real_observe_cost() * observations
            + _real_emit_cost() * emits)
    share = cost / noop_seconds

    lines = [
        f"demo job, telemetry off:       {noop_seconds:8.3f} s",
        f"spans / observations / events: {spans:5d} / {observations:5d}"
        f" / {emits:5d}",
        f"enabled-telemetry cost:        {cost * 1e3:8.3f} ms",
        f"share of the job's wall time:  {share:8.2%} (budget: 5%)",
    ]
    save_result("serve_telemetry_overhead", "\n".join(lines))
    save_result_json("serve_telemetry_overhead", {
        "noop_job_seconds": round(noop_seconds, 4),
        "spans": spans,
        "observations": observations,
        "events": emits,
        "telemetry_share": round(share, 6),
    })
    assert share < 0.05, (
        f"serve telemetry costs {share:.2%} of an untelemetered job"
    )


def test_event_log_overhead(save_result, save_result_json):
    """The flight recorder — even *enabled* — stays under 5%.

    Same stable methodology as the tracer test: measure the per-emit
    cost in isolation, multiply by the number of events one recorded
    sweep actually emits, and compare against the sweep's wall time
    (avoiding flaky wall-clock-vs-wall-clock diffs)."""
    run_table1(max_workers=1)  # warm caches before timing

    start = perf_counter()
    run_table1(max_workers=1)
    noop_seconds = perf_counter() - start

    log = EventLog()
    run_table1(FragDroidConfig(event_log=log), max_workers=1)
    emits = len(log.events())
    assert emits > 0, "an enabled event log must record the sweep"

    null_share = _null_emit_cost() * emits / noop_seconds
    real_share = _real_emit_cost() * emits / noop_seconds

    lines = [
        f"table-I sweep wall time:       {noop_seconds:8.3f} s",
        f"flight-recorder events:        {emits:8d}",
        f"no-op emit share of the sweep: {null_share:8.2%} (budget: 5%)",
        f"enabled emit share:            {real_share:8.2%} (budget: 5%)",
    ]
    save_result("obs_event_log_overhead", "\n".join(lines))
    save_result_json("obs_event_log_overhead", {
        "noop_sweep_seconds": round(noop_seconds, 4),
        "events": emits,
        "null_share": round(null_share, 6),
        "real_share": round(real_share, 6),
    })
    assert null_share < 0.05, (
        f"no-op event-log path costs {null_share:.2%} of a Table-I sweep"
    )
    assert real_share < 0.05, (
        f"enabled event log costs {real_share:.2%} of a Table-I sweep"
    )
