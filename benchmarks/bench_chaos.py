"""Chaos benchmark: Table-I coverage under the fault profiles.

Runs the full evaluation sweep under each named fault profile with a
fixed seed and pins the resilience bar: the mild profile must keep mean
coverage within 10% (relative) of the fault-free baseline, and even the
hostile profile must complete with every failure classified — no
unhandled exceptions, no unexplained outcomes.
"""

from repro import FragDroidConfig
from repro.bench import explore_many, fault_census, successful_results
from repro.core.coverage import CoverageReport, CoverageRow

SEED = 2018
TOLERANCE = 0.10


def _sweep(profile):
    config = FragDroidConfig(fault_profile=profile, fault_seed=SEED)
    return explore_many(config=config)


def _coverage(outcomes):
    rows = [CoverageRow.from_result(result)
            for result in successful_results(outcomes).values()]
    return CoverageReport(rows)


def _run_all():
    return {profile: _sweep(profile)
            for profile in ("none", "mild", "hostile")}


def _render(sweeps):
    lines = [f"chaos sweep over Table I (seed {SEED})", ""]
    for profile, outcomes in sweeps.items():
        report = _coverage(outcomes)
        census = fault_census(outcomes)
        failed = ", ".join(f"{k}={v}" for k, v in sorted(census.items()))
        lines.append(
            f"{profile:>8}: {len(report.rows)}/{len(outcomes)} apps ok, "
            f"mean activity {report.mean_activity_rate:.2%}, "
            f"mean fragment {report.mean_fragment_rate:.2%}"
            + (f", failures: {failed}" if failed else "")
        )
    return "\n".join(lines)


def test_chaos_profiles(benchmark, save_result, save_result_json):
    sweeps = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    save_result("chaos", _render(sweeps))
    save_result_json("chaos", {
        profile: {
            "apps_ok": len(_coverage(outcomes).rows),
            "apps_total": len(outcomes),
            "mean_activity_rate": round(
                _coverage(outcomes).mean_activity_rate, 6),
            "mean_fragment_rate": round(
                _coverage(outcomes).mean_fragment_rate, 6),
            "faults": fault_census(outcomes),
        }
        for profile, outcomes in sweeps.items()
    })

    baseline = _coverage(sweeps["none"])
    assert all(o.ok for o in sweeps["none"].values())

    # Mild: the retry/recovery machinery must hold coverage within 10%
    # of the fault-free numbers.
    mild = _coverage(sweeps["mild"])
    assert (mild.mean_activity_rate
            >= baseline.mean_activity_rate * (1 - TOLERANCE))
    assert (mild.mean_fragment_rate
            >= baseline.mean_fragment_rate * (1 - TOLERANCE))

    # Hostile: graceful degradation, not graceful completion — but the
    # sweep finishes and every failure carries a fault classification.
    hostile = sweeps["hostile"]
    assert len(hostile) == len(sweeps["none"])
    for outcome in hostile.values():
        assert outcome.ok or outcome.fault_kind is not None, (
            f"{outcome.package}: unclassified {outcome.error!r}")
    assert "other" not in fault_census(hostile)

    # Resilient runs account for their adversity in the degradation
    # section; fault-free runs must not grow one.
    assert all(r.degradation is None
               for r in successful_results(sweeps["none"]).values())
    assert all(r.degradation is not None
               for r in successful_results(sweeps["hostile"]).values())
