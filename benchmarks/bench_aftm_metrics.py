"""AFTM model statistics across the corpus (Figure 5 generalised).

For every evaluation app: model size, edge-kind mix, diameter, and how
much of the statically-predicted model the dynamic phase converted into
concrete click triggers.
"""

from repro.bench.parallel import explore_many, unwrap_results
from repro.corpus import TABLE1_PLANS
from repro.static.metrics import compute_metrics


def _collect():
    results = unwrap_results(explore_many(TABLE1_PLANS, max_workers=4))
    return {
        package: compute_metrics(result.aftm)
        for package, result in results.items()
    }


def test_aftm_metrics(benchmark, save_result):
    metrics = benchmark.pedantic(_collect, rounds=1, iterations=1)
    header = (
        f"{'package':34} {'A':>3} {'F':>3} {'E1':>4} {'E2':>4} {'E3':>4} "
        f"{'diam':>5} {'visit%':>7} {'dyn%':>6}"
    )
    lines = [header, "-" * len(header)]
    for package, m in sorted(metrics.items()):
        lines.append(
            f"{package:34} {m.activities:>3} {m.fragments:>3} "
            f"{m.e1:>4} {m.e2:>4} {m.e3:>4} {m.diameter:>5} "
            f"{m.visited_ratio:>7.1%} {m.dynamic_edge_ratio:>6.1%}"
        )
    save_result("aftm_metrics", "\n".join(lines))

    # Every model has E2 edges (they all host fragments), and the
    # dynamic phase upgraded at least some static edges to clicks.
    assert all(m.e2 > 0 for m in metrics.values())
    assert sum(m.e3 for m in metrics.values()) > 0
    assert any(m.dynamic_edge_ratio > 0.2 for m in metrics.values())
