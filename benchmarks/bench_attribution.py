"""Attribution cost pin: explaining a sweep is post-hoc and ~free.

The coverage-attribution engine (``repro.obs.attribution``) promises to
be pure after-the-fact analysis — it must never make running the sweep
meaningfully more expensive.  Two pins:

* explaining the Table-I sweep's outcomes costs under 5% of the sweep's
  own wall time;
* at the 217-app study population (the Section VII-A scale), the cost
  stays under 5% of the correspondingly scaled sweep time — attribution
  is linear in the universe, with no super-linear cliff.

Same stable methodology as ``bench_obs_overhead``: wall-time one real
sweep, wall-time the explanation of its outcomes, compare shares.
"""

from time import perf_counter

from repro import FragDroidConfig
from repro.bench import explore_many
from repro.obs import EventLog
from repro.obs.attribution import explain_outcomes

#: The usage-study population (Section VII-A: 217 top market apps).
STUDY_APPS = 217


def test_attribution_cost_share(benchmark, save_result, save_result_json):
    explore_many(max_workers=1)  # warm caches before timing

    config = FragDroidConfig(event_log=EventLog())
    start = perf_counter()
    outcomes = benchmark.pedantic(
        explore_many, kwargs={"config": config, "max_workers": 1},
        rounds=1, iterations=1)
    sweep_seconds = perf_counter() - start

    start = perf_counter()
    explanation = explain_outcomes(outcomes, label="bench")
    explain_seconds = perf_counter() - start
    share = explain_seconds / sweep_seconds

    # The engine's own contracts hold on the benchmark corpus too:
    # deterministic (same outcomes, same content id) and total (no
    # unclassified fallback).
    assert explanation.explanation_id == \
        explain_outcomes(outcomes, label="bench").explanation_id
    assert not explanation.unclassified()
    assert explanation.targets, "the sweep left nothing to explain"

    # Scale the universe to the 217-app study population by cycling the
    # Table-I outcomes; the sweep time scales with the app count, so
    # the share must hold there too.
    packages = sorted(outcomes)
    study_outcomes = {
        f"{packages[i % len(packages)]}.study{i:03d}":
            outcomes[packages[i % len(packages)]]
        for i in range(STUDY_APPS)
    }
    start = perf_counter()
    study = explain_outcomes(study_outcomes, label="bench-study")
    study_seconds = perf_counter() - start
    study_sweep_seconds = sweep_seconds * (STUDY_APPS / len(packages))
    study_share = study_seconds / study_sweep_seconds
    assert len(study.apps) == STUDY_APPS

    lines = [
        f"table-I sweep wall time:        {sweep_seconds:8.3f} s",
        f"explaining its outcomes:        {explain_seconds:8.3f} s "
        f"({share:.2%} of the sweep; budget: 5%)",
        f"unreached targets explained:    {len(explanation.targets):8d}",
        f"study-scale apps explained:     {len(study.apps):8d}",
        f"study-scale attribution:        {study_seconds:8.3f} s "
        f"({study_share:.2%} of the scaled sweep; budget: 5%)",
    ]
    save_result("attribution_cost", "\n".join(lines))
    save_result_json("attribution_cost", {
        "sweep_seconds": round(sweep_seconds, 4),
        "explain_seconds": round(explain_seconds, 4),
        "explain_share": round(share, 6),
        "targets": len(explanation.targets),
        "study_apps": len(study.apps),
        "study_explain_seconds": round(study_seconds, 4),
        "study_explain_share": round(study_share, 6),
    })
    assert share < 0.05, (
        f"explaining the sweep costs {share:.2%} of running it"
    )
    assert study_share < 0.05, (
        f"study-scale attribution costs {study_share:.2%} of the "
        f"scaled sweep"
    )
